//! Per-node statistics: transmission counters and the time-averaged queue
//! size used by the paper's Fig. 3.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Counters accumulated for one node over a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Packets this node finished transmitting.
    pub packets_sent: u64,
    /// Bytes this node finished transmitting.
    pub bytes_sent: u64,
    /// Packets delivered *to* this node (after channel losses).
    pub packets_received: u64,
    /// Packets addressed/audible to this node that the channel lost.
    pub packets_lost: u64,
}

/// Aggregates accumulated for one session across the whole mesh.
///
/// Sessions are the engine's unit of concurrent workload: every packet a
/// behavior enqueues is stamped with the session that enqueued it, and the
/// MAC charges these counters as the packet moves through the shared
/// channel. Cross-session metrics (airtime share, inter-session queue
/// interference) are ratios over these per-session totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Packets of this session that finished transmitting (any node).
    pub packets_sent: u64,
    /// Bytes of this session that finished transmitting.
    pub bytes_sent: u64,
    /// Per-receiver deliveries of this session's packets.
    pub packets_delivered: u64,
    /// Per-receiver channel losses of this session's packets.
    pub packets_lost: u64,
    /// Channel time consumed by this session's transmissions, in seconds.
    /// The session's *airtime share* is this over the sum across sessions.
    pub airtime: f64,
    /// Total time this session's packets spent queued before transmission
    /// started, in seconds — queueing delay inflicted by whoever shares
    /// the node's transmit queue, i.e. inter-session queue interference.
    pub queue_wait: f64,
}

/// Integrates a queue-length signal over time to report its time average —
/// the paper samples "the broadcast queue size, take\[s\] the time average"
/// (Sec. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct QueueTracker {
    last_time: SimTime,
    last_len: usize,
    weighted_sum: f64,
    observed: f64,
    peak: usize,
}

impl QueueTracker {
    /// Starts tracking at time zero with an empty queue.
    pub fn new() -> Self {
        QueueTracker {
            last_time: SimTime::ZERO,
            last_len: 0,
            weighted_sum: 0.0,
            observed: 0.0,
            peak: 0,
        }
    }

    /// Records that the queue has length `len` as of time `now`. The
    /// previous length is credited for the elapsed interval.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous observation.
    pub fn observe(&mut self, now: SimTime, len: usize) {
        assert!(now >= self.last_time, "observations must be in time order");
        let dt = now.since(self.last_time);
        self.weighted_sum += self.last_len as f64 * dt;
        self.observed += dt;
        self.last_time = now;
        self.last_len = len;
        self.peak = self.peak.max(len);
    }

    /// The time-averaged queue length over the observed horizon.
    pub fn time_average(&self) -> f64 {
        if self.observed == 0.0 {
            self.last_len as f64
        } else {
            self.weighted_sum / self.observed
        }
    }

    /// The largest queue length ever observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total time across all observations.
    pub fn horizon(&self) -> f64 {
        self.observed
    }
}

impl Default for QueueTracker {
    fn default() -> Self {
        QueueTracker::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_average_weighs_durations() {
        let mut q = QueueTracker::new();
        q.observe(SimTime::new(1.0), 10); // len 0 for [0,1)
        q.observe(SimTime::new(3.0), 0); // len 10 for [1,3)
        q.observe(SimTime::new(4.0), 0); // len 0 for [3,4)
                                         // (0·1 + 10·2 + 0·1) / 4 = 5
        assert!((q.time_average() - 5.0).abs() < 1e-12);
        assert_eq!(q.peak(), 10);
        assert_eq!(q.horizon(), 4.0);
    }

    #[test]
    fn empty_tracker_reports_current_len() {
        let q = QueueTracker::new();
        assert_eq!(q.time_average(), 0.0);
    }

    #[test]
    fn irregular_intervals_and_zero_width_observations() {
        let mut q = QueueTracker::new();
        q.observe(SimTime::new(0.25), 4); // len 0 for [0, 0.25)
        q.observe(SimTime::new(0.25), 6); // zero-width: len 4 for no time
        q.observe(SimTime::new(2.0), 1); // len 6 for [0.25, 2)
        q.observe(SimTime::new(2.5), 0); // len 1 for [2, 2.5)
                                         // (0·0.25 + 4·0 + 6·1.75 + 1·0.5) / 2.5 = 11/2.5
        assert!((q.time_average() - 11.0 / 2.5).abs() < 1e-12);
        assert_eq!(q.peak(), 6);
        assert_eq!(q.horizon(), 2.5);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_observation_panics() {
        let mut q = QueueTracker::new();
        q.observe(SimTime::new(2.0), 1);
        q.observe(SimTime::new(1.0), 2);
    }
}
