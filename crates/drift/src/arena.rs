//! Generational arenas: index-based storage for the engine's hot path.
//!
//! The event queue, packet queues and in-flight transmissions all live in
//! [`Arena`]s instead of boxes: allocation is a free-list pop, freeing is a
//! push, and a freed slot's generation counter invalidates every stale
//! [`Handle`] that still points at it. Steady-state simulation therefore
//! allocates nothing — slots are recycled — and "cancelled" references
//! (aborted transmissions, cancelled events) are detected in O(1) instead
//! of being chased down in a heap.

/// Index-plus-generation reference into an [`Arena`].
///
/// A handle stays valid until its slot is freed; afterwards every access
/// through it returns `None` (the slot's generation moved on), even if the
/// slot was re-allocated for new data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    index: u32,
    generation: u32,
}

impl Handle {
    /// The slot index (stable for the handle's lifetime).
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The generation this handle was issued under.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// One arena slot: either a live value or a free-list link, both stamped
/// with the slot's current generation.
#[derive(Debug)]
enum Slot<T> {
    Occupied { generation: u32, value: T },
    Vacant { generation: u32, next_free: u32 },
}

/// Sentinel terminating the free list.
const NONE: u32 = u32::MAX;

/// A generational arena.
///
/// Values are addressed by [`Handle`]; freeing bumps the slot generation so
/// outstanding handles become harmlessly stale instead of aliasing new
/// data (the classic ABA hazard of plain index recycling).
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free_head: NONE,
            len: 0,
        }
    }

    /// Creates an arena with room for `capacity` values before growing.
    pub fn with_capacity(capacity: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(capacity),
            free_head: NONE,
            len: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no values are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots (live + recycled); the arena's high-water mark.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Stores `value`, recycling a freed slot when one is available. This
    /// is the hot-path entry point: steady-state it never allocates.
    pub fn alloc(&mut self, value: T) -> Handle {
        self.len += 1;
        if self.free_head != NONE {
            let index = self.free_head;
            let slot = &mut self.slots[index as usize];
            let generation = match *slot {
                Slot::Vacant {
                    generation,
                    next_free,
                } => {
                    self.free_head = next_free;
                    generation
                }
                Slot::Occupied { .. } => unreachable!("free list only holds vacant slots"),
            };
            *slot = Slot::Occupied { generation, value };
            Handle { index, generation }
        } else {
            let index = self.slots.len() as u32;
            assert!(index != NONE, "arena exhausted u32 index space");
            self.slots.push(Slot::Occupied {
                generation: 0,
                value,
            });
            Handle {
                index,
                generation: 0,
            }
        }
    }

    /// Removes and returns the value behind `handle`, or `None` if the
    /// handle is stale (already freed, possibly re-allocated since).
    pub fn free(&mut self, handle: Handle) -> Option<T> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == handle.generation => {
                let next_generation = generation.wrapping_add(1);
                let old = std::mem::replace(
                    slot,
                    Slot::Vacant {
                        generation: next_generation,
                        next_free: self.free_head,
                    },
                );
                self.free_head = handle.index;
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Vacant { .. } => unreachable!("matched occupied above"),
                }
            }
            _ => None,
        }
    }

    /// Shared access to the value behind `handle` (`None` when stale).
    pub fn get(&self, handle: Handle) -> Option<&T> {
        match self.slots.get(handle.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == handle.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable access to the value behind `handle` (`None` when stale).
    pub fn get_mut(&mut self, handle: Handle) -> Option<&mut T> {
        match self.slots.get_mut(handle.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == handle.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// `true` if `handle` still addresses a live value.
    pub fn contains(&self, handle: Handle) -> bool {
        self.get(handle).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_free_round_trip() {
        let mut arena = Arena::new();
        let a = arena.alloc("alpha");
        let b = arena.alloc("beta");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), Some(&"alpha"));
        assert_eq!(arena.get(b), Some(&"beta"));
        assert_eq!(arena.free(a), Some("alpha"));
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.get(a), None, "freed handles read as stale");
        assert_eq!(arena.get(b), Some(&"beta"));
    }

    #[test]
    fn slots_are_recycled_without_new_capacity() {
        let mut arena = Arena::with_capacity(2);
        let a = arena.alloc(1);
        let b = arena.alloc(2);
        assert_eq!(arena.capacity(), 2);
        arena.free(a);
        arena.free(b);
        let c = arena.alloc(3);
        let d = arena.alloc(4);
        assert_eq!(arena.capacity(), 2, "freed slots are reused");
        assert_eq!(arena.get(c), Some(&3));
        assert_eq!(arena.get(d), Some(&4));
    }

    #[test]
    fn stale_handles_never_alias_recycled_slots() {
        let mut arena = Arena::new();
        let old = arena.alloc(7);
        arena.free(old);
        let new = arena.alloc(8);
        // Same slot, different generation.
        assert_eq!(old.index(), new.index());
        assert_ne!(old.generation(), new.generation());
        assert_eq!(arena.get(old), None);
        assert_eq!(arena.get_mut(old), None);
        assert_eq!(arena.free(old), None, "double free is a no-op");
        assert!(arena.contains(new));
        assert_eq!(arena.get(new), Some(&8));
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut arena = Arena::new();
        let h = arena.alloc(vec![1, 2]);
        arena.get_mut(h).unwrap().push(3);
        assert_eq!(arena.get(h), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn empty_and_default() {
        let arena: Arena<u8> = Arena::default();
        assert!(arena.is_empty());
        assert_eq!(arena.len(), 0);
        assert_eq!(arena.capacity(), 0);
    }

    #[test]
    fn interleaved_churn_keeps_handles_coherent() {
        let mut arena = Arena::new();
        let mut live: Vec<(Handle, usize)> = Vec::new();
        for round in 0..100usize {
            let h = arena.alloc(round);
            live.push((h, round));
            if round % 3 == 0 {
                let (h, v) = live.remove(live.len() / 2);
                assert_eq!(arena.free(h), Some(v));
            }
        }
        assert_eq!(arena.len(), live.len());
        for (h, v) in live {
            assert_eq!(arena.get(h), Some(&v));
        }
    }
}
