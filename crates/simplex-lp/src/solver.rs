//! Two-phase dense tableau simplex with Bland's anti-cycling rule.

use telemetry::Profiler;

use crate::error::LpError;
use crate::problem::{LpProblem, Relation, Sense};

const TOL: f64 = 1e-9;

/// An optimal solution returned by [`LpProblem::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    objective: f64,
    values: Vec<f64>,
}

impl Solution {
    /// Optimal objective value (in the problem's own sense).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of variable `var` at the optimum.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn value(&self, var: usize) -> f64 {
        self.values[var]
    }

    /// All variable values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

struct Tableau {
    /// `rows × cols` coefficient matrix; the last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Basis variable of each row.
    basis: Vec<usize>,
    /// Total structural + slack + artificial columns (excludes RHS).
    cols: usize,
    rows: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let factor = self.a[row][col];
        debug_assert!(factor.abs() > TOL);
        for v in &mut self.a[row] {
            *v /= factor;
        }
        let pivot_row = self.a[row].clone();
        for (r, data) in self.a.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let m = data[col];
            if m.abs() > TOL {
                for (v, pv) in data.iter_mut().zip(&pivot_row) {
                    *v -= m * pv;
                }
            }
        }
        self.basis[row] = col;
    }

    /// Runs the simplex loop minimizing `cost · x`. `allowed` restricts the
    /// columns eligible to enter the basis (used to keep artificials out in
    /// phase 2). Returns the reduced-cost row at termination.
    fn minimize(
        &mut self,
        cost: &[f64],
        allowed: &[bool],
        iteration_budget: usize,
        profiler: &Profiler,
    ) -> Result<Vec<f64>, LpError> {
        // Reduced costs: z_j = cost_j - cost_B · B^-1 A_j, maintained as an
        // explicit row updated by the same pivots.
        let mut z = vec![0.0; self.cols + 1];
        z[..self.cols].copy_from_slice(cost);
        // Eliminate basis columns from the cost row.
        for (r, &b) in self.basis.iter().enumerate() {
            let m = z[b];
            if m.abs() > TOL {
                for (zv, av) in z.iter_mut().zip(&self.a[r]) {
                    *zv -= m * av;
                }
            }
        }

        // Dantzig pivoting (most negative reduced cost) is fast in practice;
        // switch to Bland's rule whenever the objective stalls, which
        // restores the anti-cycling guarantee.
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;
        for _ in 0..iteration_budget {
            let (col, row) = {
                let _select = profiler.span("pivot_select");
                let col = if stall < 24 {
                    // Dantzig: most negative reduced cost.
                    let mut best: Option<(f64, usize)> = None;
                    for j in 0..self.cols {
                        if allowed[j] && z[j] < -TOL && best.is_none_or(|(v, _)| z[j] < v) {
                            best = Some((z[j], j));
                        }
                    }
                    best.map(|(_, j)| j)
                } else {
                    // Bland: lowest-index eligible column (anti-cycling).
                    (0..self.cols).find(|&j| allowed[j] && z[j] < -TOL)
                };
                let Some(col) = col else {
                    return Ok(z); // optimal
                };
                // Ratio test, Bland tie-break by basis variable index.
                let mut best: Option<(f64, usize, usize)> = None; // (ratio, basis var, row)
                for r in 0..self.rows {
                    let a = self.a[r][col];
                    if a > TOL {
                        let ratio = self.a[r][self.cols] / a;
                        match best {
                            None => best = Some((ratio, self.basis[r], r)),
                            Some((br, bb, _)) => {
                                if ratio < br - TOL || (ratio < br + TOL && self.basis[r] < bb) {
                                    best = Some((ratio, self.basis[r], r));
                                }
                            }
                        }
                    }
                }
                let Some((_, _, row)) = best else {
                    return Err(LpError::Unbounded);
                };
                (col, row)
            };
            let _row_ops = profiler.span("row_ops");
            self.pivot(row, col);
            // Update the cost row with the same pivot.
            let m = z[col];
            if m.abs() > TOL {
                for (zv, av) in z.iter_mut().zip(&self.a[row]) {
                    *zv -= m * av;
                }
            }
            // Stall detection drives the Dantzig → Bland switch.
            let obj = -z[self.cols];
            if obj < last_obj - TOL {
                stall = 0;
            } else {
                stall += 1;
            }
            last_obj = obj;
        }
        Err(LpError::IterationLimit)
    }
}

pub(crate) fn solve(problem: &LpProblem, profiler: &Profiler) -> Result<Solution, LpError> {
    let _solve = profiler.span("lp.solve");
    let n = problem.variables();
    let m = problem.constraints.len();

    // Count slack and artificial columns.
    let mut slack_cols = 0;
    let mut artificial_cols = 0;
    for c in &problem.constraints {
        // Normalize to non-negative RHS first; relation may flip.
        let rel = effective_relation(c.relation, c.rhs);
        match rel {
            Relation::Le => slack_cols += 1,
            Relation::Ge => {
                slack_cols += 1;
                artificial_cols += 1;
            }
            Relation::Eq => artificial_cols += 1,
        }
    }

    let cols = n + slack_cols + artificial_cols;
    let mut a = vec![vec![0.0; cols + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut next_slack = n;
    let mut next_artificial = n + slack_cols;

    for (r, c) in problem.constraints.iter().enumerate() {
        let flip = c.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for &(i, v) in &c.coeffs {
            a[r][i] += sign * v;
        }
        a[r][cols] = sign * c.rhs;
        match effective_relation(c.relation, c.rhs) {
            Relation::Le => {
                a[r][next_slack] = 1.0;
                basis[r] = next_slack;
                next_slack += 1;
            }
            Relation::Ge => {
                a[r][next_slack] = -1.0; // surplus
                next_slack += 1;
                a[r][next_artificial] = 1.0;
                basis[r] = next_artificial;
                next_artificial += 1;
            }
            Relation::Eq => {
                a[r][next_artificial] = 1.0;
                basis[r] = next_artificial;
                next_artificial += 1;
            }
        }
    }

    // Anti-degeneracy perturbation: sUnicast-style instances have most RHS
    // values at exactly 0 (coupling rows), which sends the tableau into
    // enormous runs of degenerate pivots. Loosening every ≤ row by a
    // distinct, negligible epsilon breaks the ties (the classic
    // perturbation method) and can never cut feasible points; equality
    // rows are left exact (perturbing them can make structurally dependent
    // systems, e.g. flow conservation, inconsistent). The distortion is
    // ~1e-10 per row, far below the solver's tolerance for our instances.
    for (r, c) in problem.constraints.iter().enumerate() {
        if effective_relation(c.relation, c.rhs) == Relation::Le {
            a[r][cols] += 1e-10 * (r + 1) as f64;
        }
    }

    let mut tab = Tableau {
        a,
        basis,
        cols,
        rows: m,
    };
    let budget = 400 * (cols + m + 10);

    // Phase 1: minimize the sum of artificial variables.
    if artificial_cols > 0 {
        let _phase1 = profiler.span("phase1");
        let mut cost = vec![0.0; cols];
        for c in cost.iter_mut().take(cols).skip(n + slack_cols) {
            *c = 1.0;
        }
        let allowed = vec![true; cols];
        let z = tab.minimize(&cost, &allowed, budget, profiler)?;
        // Optimal phase-1 objective = -z[rhs]; infeasible if positive.
        let phase1 = -z[tab.cols];
        if phase1 > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive any artificial still in the basis out (degenerate rows).
        for r in 0..tab.rows {
            if tab.basis[r] >= n + slack_cols {
                if let Some(col) = (0..n + slack_cols).find(|&j| tab.a[r][j].abs() > TOL) {
                    tab.pivot(r, col);
                }
                // If the whole row is zero the constraint was redundant; the
                // artificial stays basic at value 0, which is harmless as
                // long as it cannot re-enter (phase-2 `allowed` forbids it).
            }
        }
    }

    // Phase 2: minimize ±objective with artificials locked out.
    let sense_factor = match problem.sense() {
        Sense::Maximize => -1.0,
        Sense::Minimize => 1.0,
    };
    let mut cost = vec![0.0; cols];
    for (j, &c) in problem.objective_internal().iter().enumerate() {
        if !c.is_finite() {
            return Err(LpError::NotFinite);
        }
        cost[j] = sense_factor * c;
    }
    let mut allowed = vec![true; cols];
    for flag in allowed.iter_mut().take(cols).skip(n + slack_cols) {
        *flag = false;
    }
    {
        let _phase2 = profiler.span("phase2");
        tab.minimize(&cost, &allowed, budget, profiler)?;
    }

    let mut values = vec![0.0; n];
    for (r, &b) in tab.basis.iter().enumerate() {
        if b < n {
            values[b] = tab.a[r][tab.cols];
        }
    }

    // Post-solve verification: dense tableau arithmetic accumulates error
    // over thousands of pivots; rather than return a silently-wrong answer,
    // check non-negativity and every constraint against the *original* data
    // and refuse if the drift is material.
    let scale: f64 = values.iter().fold(1.0f64, |a, &v| a.max(v.abs()));
    let tol = 1e-6 * scale.max(1.0);
    if values.iter().any(|&v| v < -tol) {
        return Err(LpError::NumericalInstability);
    }
    for c in &problem.constraints {
        let lhs: f64 = c.coeffs.iter().map(|&(i, v)| v * values[i]).sum();
        let row_scale: f64 = c
            .coeffs
            .iter()
            .map(|&(_, v)| v.abs())
            .fold(c.rhs.abs().max(1.0), f64::max)
            * scale.max(1.0);
        let row_tol = 1e-6 * row_scale;
        let violated = match c.relation {
            Relation::Le => lhs > c.rhs + row_tol,
            Relation::Ge => lhs < c.rhs - row_tol,
            Relation::Eq => (lhs - c.rhs).abs() > row_tol,
        };
        if violated {
            return Err(LpError::NumericalInstability);
        }
    }

    let objective: f64 = problem
        .objective_internal()
        .iter()
        .zip(&values)
        .map(|(c, x)| c * x)
        .sum();
    Ok(Solution { objective, values })
}

/// The relation after normalizing the row to a non-negative RHS.
fn effective_relation(rel: Relation, rhs: f64) -> Relation {
    if rhs >= 0.0 {
        rel
    } else {
        match rel {
            Relation::Le => Relation::Ge,
            Relation::Ge => Relation::Le,
            Relation::Eq => Relation::Eq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LpProblem;

    #[test]
    fn textbook_maximization() {
        let mut lp = LpProblem::maximize(2);
        lp.set_objective(&[3.0, 5.0]);
        lp.push_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        lp.push_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        lp.push_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let s = lp.solve().unwrap();
        assert!((s.objective() - 36.0).abs() < 1e-9);
        assert!((s.value(0) - 2.0).abs() < 1e-9);
        assert!((s.value(1) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn minimization_with_ge() {
        // minimize 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3.
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(&[2.0, 3.0]);
        lp.push_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 10.0);
        lp.push_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        lp.push_constraint(&[(1, 1.0)], Relation::Ge, 3.0);
        let s = lp.solve().unwrap();
        // Optimum: x = 7, y = 3 → 14 + 9 = 23.
        assert!((s.objective() - 23.0).abs() < 1e-9, "got {}", s.objective());
        assert!((s.value(0) - 7.0).abs() < 1e-9);
        assert!((s.value(1) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // maximize x + y s.t. x + y = 5, x <= 3.
        let mut lp = LpProblem::maximize(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.push_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 5.0);
        lp.push_upper_bound(0, 3.0);
        let s = lp.solve().unwrap();
        assert!((s.objective() - 5.0).abs() < 1e-9);
        assert!((s.value(0) + s.value(1) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn profiled_solve_matches_plain_and_counts_pivots() {
        let build = || {
            let mut lp = LpProblem::maximize(2);
            lp.set_objective(&[3.0, 5.0]);
            lp.push_constraint(&[(0, 1.0)], Relation::Le, 4.0);
            lp.push_constraint(&[(1, 2.0)], Relation::Le, 12.0);
            lp.push_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
            lp
        };
        let plain = build().solve().unwrap();
        let profiler = Profiler::virtual_clock();
        let profiled = build().solve_profiled(&profiler).unwrap();
        assert_eq!(plain, profiled);
        let report = profiler.report();
        assert_eq!(report.span("lp.solve").map(|s| s.calls), Some(1));
        let select = report
            .span("lp.solve;phase2;pivot_select")
            .expect("pivot_select span");
        let rows = report
            .span("lp.solve;phase2;row_ops")
            .expect("row_ops span");
        // Every applied pivot was first selected; the final optimality
        // check selects nothing and applies nothing.
        assert_eq!(select.calls, rows.calls + 1);
        assert!(rows.calls >= 1);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpProblem::maximize(1);
        lp.set_objective(&[1.0]);
        lp.push_constraint(&[(0, 1.0)], Relation::Ge, 5.0);
        lp.push_constraint(&[(0, 1.0)], Relation::Le, 3.0);
        assert_eq!(lp.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::maximize(2);
        lp.set_objective(&[1.0, 0.0]);
        lp.push_constraint(&[(1, 1.0)], Relation::Le, 1.0);
        assert_eq!(lp.solve(), Err(LpError::Unbounded));
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x - y <= -2 with x, y >= 0: equivalent to y - x >= 2.
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(&[0.0, 1.0]);
        lp.push_constraint(&[(0, 1.0), (1, -1.0)], Relation::Le, -2.0);
        let s = lp.solve().unwrap();
        assert!(
            (s.value(1) - 2.0).abs() < 1e-9,
            "y should be 2, got {}",
            s.value(1)
        );
    }

    #[test]
    fn degenerate_redundant_constraints() {
        let mut lp = LpProblem::maximize(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.push_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        lp.push_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 4.0); // duplicate
        lp.push_constraint(&[(0, 2.0), (1, 2.0)], Relation::Eq, 8.0); // implied
        let s = lp.solve().unwrap();
        assert!((s.objective() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut lp = LpProblem::maximize(2);
        lp.push_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 3.0);
        let s = lp.solve().unwrap();
        assert!((s.value(0) + s.value(1) - 3.0).abs() < 1e-9);
        assert_eq!(s.objective(), 0.0);
    }

    #[test]
    fn max_flow_as_lp() {
        // Max flow on the diamond s→{a,b}→t with capacities.
        // vars: x_sa, x_sb, x_at, x_bt, f
        let (sa, sb, at, bt, fl) = (0, 1, 2, 3, 4);
        let mut lp = LpProblem::maximize(5);
        lp.set_objective_coeff(fl, 1.0);
        lp.push_upper_bound(sa, 3.0);
        lp.push_upper_bound(sb, 2.0);
        lp.push_upper_bound(at, 2.0);
        lp.push_upper_bound(bt, 4.0);
        // conservation: x_sa = x_at, x_sb = x_bt, f = x_sa + x_sb
        lp.push_constraint(&[(sa, 1.0), (at, -1.0)], Relation::Eq, 0.0);
        lp.push_constraint(&[(sb, 1.0), (bt, -1.0)], Relation::Eq, 0.0);
        lp.push_constraint(&[(fl, 1.0), (sa, -1.0), (sb, -1.0)], Relation::Eq, 0.0);
        let s = lp.solve().unwrap();
        assert!((s.objective() - 4.0).abs() < 1e-6); // min(3,2)+min(2,4)=2+2
    }

    #[test]
    fn random_lps_satisfy_their_constraints() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut solved = 0;
        for _ in 0..50 {
            let n = rng.gen_range(2..6);
            let m = rng.gen_range(1..6);
            let mut lp = LpProblem::maximize(n);
            let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            lp.set_objective(&obj);
            for _ in 0..m {
                let coeffs: Vec<(usize, f64)> =
                    (0..n).map(|i| (i, rng.gen_range(0.1..2.0))).collect();
                lp.push_constraint(&coeffs, Relation::Le, rng.gen_range(1.0..10.0));
            }
            // All-Le with positive coefficients and positive rhs: feasible
            // (origin) and bounded above in every positive direction, but a
            // negative objective coefficient keeps vars at 0 — either way
            // the solver must return a point satisfying every constraint.
            let s = lp.solve().expect("feasible bounded LP");
            for c in &lp.constraints {
                let lhs: f64 = c.coeffs.iter().map(|&(i, v)| v * s.value(i)).sum();
                assert!(
                    lhs <= c.rhs + 1e-7,
                    "constraint violated: {lhs} > {}",
                    c.rhs
                );
            }
            for i in 0..n {
                assert!(s.value(i) >= -1e-9, "negative variable");
            }
            solved += 1;
        }
        assert_eq!(solved, 50);
    }
}
