//! Problem construction API.

use crate::error::LpError;
use crate::solver::{self, Solution};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `a · x ≤ b`
    Le,
    /// `a · x ≥ b`
    Ge,
    /// `a · x = b`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub(crate) coeffs: Vec<(usize, f64)>,
    pub(crate) relation: Relation,
    pub(crate) rhs: f64,
}

/// A linear program over non-negative variables.
///
/// Variables are indexed `0..variables()` and implicitly constrained to
/// `x_i ≥ 0` (which matches every quantity in the sUnicast formulation:
/// rates and throughputs are non-negative).
#[derive(Debug, Clone)]
pub struct LpProblem {
    sense: Sense,
    variables: usize,
    objective: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Creates a maximization problem with `variables` non-negative
    /// variables and an all-zero objective.
    pub fn maximize(variables: usize) -> Self {
        LpProblem::new(Sense::Maximize, variables)
    }

    /// Creates a minimization problem.
    pub fn minimize(variables: usize) -> Self {
        LpProblem::new(Sense::Minimize, variables)
    }

    /// Creates a problem with an explicit sense.
    pub fn new(sense: Sense, variables: usize) -> Self {
        LpProblem {
            sense,
            variables,
            objective: vec![0.0; variables],
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn variables(&self) -> usize {
        self.variables
    }

    /// Number of constraints added so far.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// The optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Sets the full (dense) objective vector.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != variables()`.
    pub fn set_objective(&mut self, coeffs: &[f64]) -> &mut Self {
        assert_eq!(coeffs.len(), self.variables, "objective length mismatch");
        self.objective.copy_from_slice(coeffs);
        self
    }

    /// Sets a single objective coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective_coeff(&mut self, var: usize, coeff: f64) -> &mut Self {
        assert!(var < self.variables, "variable out of range");
        self.objective[var] = coeff;
        self
    }

    /// The current objective vector.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Adds a sparse constraint `Σ coeff_i · x_i  rel  rhs`. Repeated
    /// indices are summed.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range variable indices or non-finite numbers; these
    /// are programming errors in the model builder, not runtime conditions.
    pub fn push_constraint(
        &mut self,
        coeffs: &[(usize, f64)],
        relation: Relation,
        rhs: f64,
    ) -> &mut Self {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        let mut dense: Vec<(usize, f64)> = Vec::with_capacity(coeffs.len());
        for &(i, c) in coeffs {
            assert!(i < self.variables, "variable {i} out of range");
            assert!(c.is_finite(), "constraint coefficient must be finite");
            if let Some(slot) = dense.iter_mut().find(|(j, _)| *j == i) {
                slot.1 += c;
            } else {
                dense.push((i, c));
            }
        }
        self.constraints.push(Constraint {
            coeffs: dense,
            relation,
            rhs,
        });
        self
    }

    /// Adds the upper bound `x_var ≤ bound` as a constraint row.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or `bound` is not finite.
    pub fn push_upper_bound(&mut self, var: usize, bound: f64) -> &mut Self {
        self.push_constraint(&[(var, 1.0)], Relation::Le, bound)
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] — no point satisfies the constraints.
    /// * [`LpError::Unbounded`] — the objective can grow without limit.
    /// * [`LpError::IterationLimit`] — the pivot budget was exhausted
    ///   (indicates severe numerical degeneracy; not observed in practice).
    pub fn solve(&self) -> Result<Solution, LpError> {
        solver::solve(self, &telemetry::Profiler::disabled())
    }

    /// Like [`LpProblem::solve`], recording `lp.solve` spans
    /// (`phase1`/`phase2` with `pivot_select`/`row_ops` children) on the
    /// given profiler.
    ///
    /// # Errors
    ///
    /// Same as [`LpProblem::solve`].
    pub fn solve_profiled(&self, profiler: &telemetry::Profiler) -> Result<Solution, LpError> {
        solver::solve(self, profiler)
    }

    pub(crate) fn objective_internal(&self) -> &[f64] {
        &self.objective
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_state() {
        let mut lp = LpProblem::maximize(3);
        lp.set_objective(&[1.0, 2.0, 3.0]);
        lp.push_constraint(&[(0, 1.0), (0, 2.0)], Relation::Le, 5.0); // merged
        lp.push_upper_bound(2, 9.0);
        assert_eq!(lp.variables(), 3);
        assert_eq!(lp.constraint_count(), 2);
        assert_eq!(lp.constraints[0].coeffs, vec![(0, 3.0)]);
        assert_eq!(lp.sense(), Sense::Maximize);
        assert_eq!(lp.objective(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_variable_panics() {
        let mut lp = LpProblem::maximize(2);
        lp.push_constraint(&[(5, 1.0)], Relation::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rhs_panics() {
        let mut lp = LpProblem::maximize(1);
        lp.push_constraint(&[(0, 1.0)], Relation::Le, f64::NAN);
    }
}
