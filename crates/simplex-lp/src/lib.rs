//! A dense two-phase primal simplex solver for linear programs.
//!
//! The OMNC paper notes that its throughput-maximization problem *sUnicast*
//! "is a linear program and its size is proportional to the number of nodes
//! in `V`, and thus it can be solved in polynomial time" (Sec. 3.2). The
//! reproduction needs an exact LP solution as the reference that the
//! *distributed* rate-control algorithm is validated against — this crate is
//! that substrate, built from scratch (no external solver dependency).
//!
//! The solver handles maximization/minimization with `≤`, `≥` and `=`
//! constraints over non-negative variables, using Bland's rule to prevent
//! cycling. It is a dense tableau implementation: simple, predictable and
//! fast enough for the instance sizes the reproduction produces (hundreds of
//! variables).
//!
//! # Examples
//!
//! ```
//! use omnc_simplex_lp::{LpProblem, Relation};
//!
//! // maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18
//! let mut lp = LpProblem::maximize(2);
//! lp.set_objective(&[3.0, 5.0]);
//! lp.push_constraint(&[(0, 1.0)], Relation::Le, 4.0);
//! lp.push_constraint(&[(1, 2.0)], Relation::Le, 12.0);
//! lp.push_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
//! let sol = lp.solve()?;
//! assert!((sol.objective() - 36.0).abs() < 1e-9);
//! assert!((sol.value(0) - 2.0).abs() < 1e-9);
//! assert!((sol.value(1) - 6.0).abs() < 1e-9);
//! # Ok::<(), omnc_simplex_lp::LpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod problem;
mod solver;

pub use error::LpError;
pub use problem::{LpProblem, Relation, Sense};
pub use solver::Solution;
