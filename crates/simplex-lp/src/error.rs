//! Error type for LP construction and solving.

use core::fmt;

/// Errors from building or solving a linear program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LpError {
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// A coefficient refers to a variable index outside the problem.
    VariableOutOfRange {
        /// The offending variable index.
        index: usize,
        /// Number of variables in the problem.
        variables: usize,
    },
    /// A supplied coefficient or bound was NaN or infinite.
    NotFinite,
    /// The pivot loop exceeded its iteration budget (numerical trouble).
    IterationLimit,
    /// The computed solution failed post-solve verification (accumulated
    /// floating-point drift in the dense tableau).
    NumericalInstability,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::VariableOutOfRange { index, variables } => {
                write!(
                    f,
                    "variable index {index} out of range for {variables} variables"
                )
            }
            LpError::NotFinite => write!(f, "coefficients and bounds must be finite"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::NumericalInstability => {
                write!(
                    f,
                    "solution failed post-solve verification (numerical drift)"
                )
            }
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_meaningful() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        let e = LpError::VariableOutOfRange {
            index: 5,
            variables: 3,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('3'));
    }
}
