//! Scalar field-element type with operator overloads.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tables::{EXP, LOG};

/// An element of GF(2^8) under the Rijndael polynomial.
///
/// Addition and subtraction are both XOR; multiplication and division use the
/// compile-time log/exp tables. All operations are total except division by
/// zero and inversion of zero, which panic (like integer division).
///
/// # Examples
///
/// ```
/// use omnc_gf256::Gf256;
///
/// let a = Gf256::new(7);
/// assert_eq!(a + a, Gf256::ZERO);           // characteristic 2
/// assert_eq!(a * a.inv().unwrap(), Gf256::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gf256(u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);

    /// Wraps a raw byte as a field element.
    ///
    /// ```
    /// # use omnc_gf256::Gf256;
    /// assert_eq!(Gf256::new(0).as_u8(), 0);
    /// ```
    #[inline]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the underlying byte.
    #[inline]
    pub const fn as_u8(self) -> u8 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the multiplicative inverse, or `None` for zero.
    ///
    /// ```
    /// # use omnc_gf256::Gf256;
    /// assert_eq!(Gf256::ZERO.inv(), None);
    /// assert_eq!(Gf256::new(2).inv().map(|i| i * Gf256::new(2)), Some(Gf256::ONE));
    /// ```
    #[inline]
    pub fn inv(self) -> Option<Gf256> {
        if self.0 == 0 {
            None
        } else {
            Some(Gf256(EXP[255 - LOG[self.0 as usize] as usize]))
        }
    }

    /// Raises this element to an integer power (with `x^0 == 1`, including
    /// `0^0 == 1` by convention).
    ///
    /// ```
    /// # use omnc_gf256::Gf256;
    /// let g = Gf256::new(3);
    /// assert_eq!(g.pow(255), Gf256::ONE); // multiplicative order divides 255
    /// ```
    pub fn pow(self, e: u32) -> Gf256 {
        if e == 0 {
            return Gf256::ONE;
        }
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        // Widen to u64 before multiplying: `l < 255` but `e` is an
        // arbitrary u32, so the product can overflow 32 bits.
        let l = u64::from(LOG[self.0 as usize]);
        Gf256(EXP[((l * u64::from(e)) % 255) as usize])
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl From<u8> for Gf256 {
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    fn from(value: Gf256) -> Self {
        value.0
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    // In characteristic 2, field addition IS xor; clippy's suspicion about
    // ^ inside Add/Sub impls does not apply to GF(2^8).
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    #[inline]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn sub(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    #[inline]
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            Gf256(0)
        } else {
            Gf256(EXP[LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize])
        }
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl Div for Gf256 {
    type Output = Gf256;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    // Division is multiplication by the inverse; clippy's suspicion about
    // * inside Div does not apply to finite fields.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        let inv = rhs.inv().expect("division by zero in GF(2^8)");
        self * inv
    }
}

impl DivAssign for Gf256 {
    fn div_assign(&mut self, rhs: Gf256) {
        *self = *self / rhs;
    }
}

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Gf256> for Gf256 {
    fn sum<I: Iterator<Item = &'a Gf256>>(iter: I) -> Gf256 {
        iter.copied().sum()
    }
}

impl Product for Gf256 {
    fn product<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ONE, |a, b| a * b)
    }
}

impl<'a> Product<&'a Gf256> for Gf256 {
    fn product<I: Iterator<Item = &'a Gf256>>(iter: I) -> Gf256 {
        iter.copied().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::mul_no_table;

    #[test]
    fn aes_reference_product() {
        // The worked example from the AES specification.
        assert_eq!(Gf256::new(0x57) * Gf256::new(0x83), Gf256::new(0xc1));
    }

    #[test]
    fn addition_is_xor() {
        assert_eq!(Gf256::new(0b1010) + Gf256::new(0b0110), Gf256::new(0b1100));
        assert_eq!(Gf256::new(0xff) - Gf256::new(0x0f), Gf256::new(0xf0));
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            let x = Gf256::new(a);
            assert_eq!(x * x.inv().unwrap(), Gf256::ONE, "a={a}");
        }
    }

    #[test]
    fn zero_has_no_inverse() {
        assert_eq!(Gf256::ZERO.inv(), None);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf256::ONE / Gf256::ZERO;
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in 0..=255u8 {
            let x = Gf256::new(a);
            let mut acc = Gf256::ONE;
            for e in 0..16u32 {
                assert_eq!(x.pow(e), acc, "a={a} e={e}");
                acc *= x;
            }
        }
    }

    #[test]
    fn pow_survives_huge_exponents() {
        // log * e overflowed u32 before the u64 widening: the exponent is
        // arbitrary, so x^e must equal x^(e mod 255) for nonzero x.
        for a in [1u8, 2, 3, 0x53, 0xca, 255] {
            let x = Gf256::new(a);
            for e in [u32::MAX, u32::MAX - 1, 20_000_000, 4_294_967_040] {
                assert_eq!(x.pow(e), x.pow(e % 255), "a={a} e={e}");
            }
        }
    }

    #[test]
    fn sum_and_product_folds() {
        let xs = [Gf256::new(1), Gf256::new(2), Gf256::new(3)];
        assert_eq!(xs.iter().sum::<Gf256>(), Gf256::new(0));
        assert_eq!(xs.iter().product::<Gf256>(), Gf256::new(2) * Gf256::new(3));
    }

    #[test]
    fn mul_matches_reference_everywhere() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(
                    (Gf256::new(a) * Gf256::new(b)).as_u8(),
                    mul_no_table(a, b),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn conversions_roundtrip() {
        for a in 0..=255u8 {
            assert_eq!(u8::from(Gf256::from(a)), a);
        }
    }

    #[test]
    fn formatting_is_never_empty() {
        assert_eq!(format!("{:?}", Gf256::ZERO), "Gf256(0x00)");
        assert_eq!(format!("{}", Gf256::new(0xab)), "ab");
        assert_eq!(format!("{:x}", Gf256::new(0xab)), "ab");
        assert_eq!(format!("{:b}", Gf256::new(0b101)), "101");
    }
}
