//! Accelerated wide-word (SWAR) coding kernels.
//!
//! The paper (Sec. 4, *Accelerated network coding*) replaces the lookup-table
//! matrix multiplication with a loop-based multiplication in Rijndael's field
//! that processes multiple bytes of a row per instruction using x86 SSE2, and
//! reports a 3–5x speedup. This module is the portable analogue: each `u64`
//! word holds eight field elements, and the Russian-peasant multiply runs on
//! all eight lanes simultaneously with bit masks ("SIMD within a register").
//!
//! The kernels are drop-in replacements for the ones in [`crate::slice`] and
//! produce bit-identical results, which the test-suite verifies exhaustively
//! at the word level and by property tests at the slice level.

const LANE_MSB: u64 = 0x8080_8080_8080_8080;
const LANE_LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;

/// Multiplies each of the eight byte lanes of `word` by the polynomial `x`
/// (i.e. doubles each lane in GF(2^8)), reducing lanes that overflow by the
/// Rijndael polynomial.
#[inline]
fn xtimes_lanes(word: u64) -> u64 {
    let hi = word & LANE_MSB;
    // Shift every lane left by one (dropping each lane's msb so no bit crosses
    // into the neighbouring lane), then xor the reduction polynomial 0x1b into
    // the lanes whose msb was set. `(hi >> 7) * 0x1b` broadcasts 0x1b into
    // exactly those lanes; products never overlap because 0x1b < 0x80.
    ((word & LANE_LOW7) << 1) ^ ((hi >> 7).wrapping_mul(0x1b))
}

/// Multiplies all eight byte lanes of `word` by the constant `c`.
///
/// ```
/// # use omnc_gf256::{wide, Gf256};
/// let w = u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]);
/// let out = wide::mul_word(w, 0x57).to_le_bytes();
/// for (i, b) in out.iter().enumerate() {
///     assert_eq!(*b, (Gf256::new((i + 1) as u8) * Gf256::new(0x57)).as_u8());
/// }
/// ```
#[inline]
pub fn mul_word(word: u64, c: u8) -> u64 {
    let mut acc = 0u64;
    let mut a = word;
    let mut k = c;
    while k != 0 {
        if k & 1 != 0 {
            acc ^= a;
        }
        a = xtimes_lanes(a);
        k >>= 1;
    }
    acc
}

/// Multiplies every byte of `data` by the constant `c`, in place, processing
/// eight bytes per loop iteration.
///
/// ```
/// # use omnc_gf256::wide;
/// let mut buf = [1u8, 2, 3];
/// wide::mul_assign(&mut buf, 2);
/// assert_eq!(buf, [2, 4, 6]);
/// ```
pub fn mul_assign(data: &mut [u8], c: u8) {
    match c {
        0 => data.fill(0),
        1 => {}
        _ => {
            let mut chunks = data.chunks_exact_mut(8);
            for chunk in &mut chunks {
                let w = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
                chunk.copy_from_slice(&mul_word(w, c).to_le_bytes());
            }
            crate::slice::mul_assign(chunks.into_remainder(), c);
        }
    }
}

/// Adds (XORs) `src` into `dst`, eight bytes at a time.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    let mut d_chunks = dst.chunks_exact_mut(8);
    let mut s_chunks = src.chunks_exact(8);
    for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
        let w = u64::from_le_bytes(d.try_into().expect("chunk of 8"))
            ^ u64::from_le_bytes(s.try_into().expect("chunk of 8"));
        d.copy_from_slice(&w.to_le_bytes());
    }
    for (d, s) in d_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder())
    {
        *d ^= s;
    }
}

/// Computes `dst += c * src` with the wide kernel — the hot loop of encoding
/// and progressive decoding.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// # use omnc_gf256::wide;
/// let mut acc = [0u8; 4];
/// wide::mul_add_assign(&mut acc, &[1, 2, 3, 4], 3);
/// assert_eq!(acc, [3, 6, 5, 12]);
/// ```
pub fn mul_add_assign(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    match c {
        0 => {}
        1 => add_assign(dst, src),
        _ => {
            // Four independent 8-lane accumulators per iteration: the
            // Russian-peasant recurrence is a serial dependency chain within
            // one word, so interleaving four words restores the
            // instruction-level parallelism that makes this kernel beat the
            // lookup tables (the paper's "process multiple bytes of a row
            // within one execution").
            let mut d_blocks = dst.chunks_exact_mut(32);
            let mut s_blocks = src.chunks_exact(32);
            for (d, s) in (&mut d_blocks).zip(&mut s_blocks) {
                let mut a = [0u64; 4];
                let mut acc = [0u64; 4];
                for k in 0..4 {
                    a[k] = u64::from_le_bytes(s[8 * k..8 * k + 8].try_into().expect("8"));
                }
                let mut bits = c;
                while bits != 0 {
                    if bits & 1 != 0 {
                        for k in 0..4 {
                            acc[k] ^= a[k];
                        }
                    }
                    for lane in &mut a {
                        *lane = xtimes_lanes(*lane);
                    }
                    bits >>= 1;
                }
                for k in 0..4 {
                    let dw = u64::from_le_bytes(d[8 * k..8 * k + 8].try_into().expect("8"));
                    d[8 * k..8 * k + 8].copy_from_slice(&(dw ^ acc[k]).to_le_bytes());
                }
            }
            let d_rem = d_blocks.into_remainder();
            let s_rem = s_blocks.remainder();
            let mut d_chunks = d_rem.chunks_exact_mut(8);
            let mut s_chunks = s_rem.chunks_exact(8);
            for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
                let dw = u64::from_le_bytes(d.try_into().expect("chunk of 8"));
                let sw = u64::from_le_bytes(s.try_into().expect("chunk of 8"));
                d.copy_from_slice(&(dw ^ mul_word(sw, c)).to_le_bytes());
            }
            crate::slice::mul_add_assign(d_chunks.into_remainder(), s_chunks.remainder(), c);
        }
    }
}

/// Divides every byte of `data` by `c`, in place, using the wide kernel.
///
/// # Panics
///
/// Panics if `c` is zero.
pub fn div_assign(data: &mut [u8], c: u8) {
    let inv = crate::Gf256::new(c)
        .inv()
        .expect("division by zero in GF(2^8)")
        .as_u8();
    mul_assign(data, inv);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice;
    use proptest::prelude::*;

    #[test]
    fn mul_word_matches_scalar_for_all_constants() {
        let word = u64::from_le_bytes([0x00, 0x01, 0x53, 0x80, 0xca, 0xfe, 0x57, 0xff]);
        let bytes = word.to_le_bytes();
        for c in 0..=255u8 {
            let got = mul_word(word, c).to_le_bytes();
            for i in 0..8 {
                let want = (crate::Gf256::new(bytes[i]) * crate::Gf256::new(c)).as_u8();
                assert_eq!(got[i], want, "c={c} lane={i}");
            }
        }
    }

    #[test]
    fn xtimes_matches_mul_by_two() {
        for b in 0..=255u8 {
            let w = u64::from_le_bytes([b; 8]);
            let got = xtimes_lanes(w).to_le_bytes();
            let want = (crate::Gf256::new(b) * crate::Gf256::new(2)).as_u8();
            assert_eq!(got, [want; 8], "b={b}");
        }
    }

    #[test]
    fn unaligned_tails_are_handled() {
        for len in 0..32 {
            let src: Vec<u8> = (0..len as u8)
                .map(|i| i.wrapping_mul(37).wrapping_add(1))
                .collect();
            let mut a = src.clone();
            let mut b = src.clone();
            mul_assign(&mut a, 0x9d);
            slice::mul_assign(&mut b, 0x9d);
            assert_eq!(a, b, "len={len}");
        }
    }

    proptest! {
        #[test]
        fn wide_mul_assign_equals_table(
            mut data in proptest::collection::vec(any::<u8>(), 0..256),
            c in any::<u8>(),
        ) {
            let mut reference = data.clone();
            slice::mul_assign(&mut reference, c);
            mul_assign(&mut data, c);
            prop_assert_eq!(data, reference);
        }

        #[test]
        fn wide_mul_add_assign_equals_table(
            src in proptest::collection::vec(any::<u8>(), 0..256),
            c in any::<u8>(),
            salt in any::<u8>(),
        ) {
            let dst: Vec<u8> = src.iter().map(|b| b.rotate_left(3) ^ salt).collect();
            let mut a = dst.clone();
            let mut b = dst;
            slice::mul_add_assign(&mut a, &src, c);
            mul_add_assign(&mut b, &src, c);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn wide_add_assign_equals_table(
            src in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let dst: Vec<u8> = src.iter().map(|b| b.wrapping_mul(17)).collect();
            let mut a = dst.clone();
            let mut b = dst;
            slice::add_assign(&mut a, &src);
            add_assign(&mut b, &src);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn wide_div_undoes_wide_mul(
            data in proptest::collection::vec(any::<u8>(), 0..64),
            c in 1u8..,
        ) {
            let mut buf = data.clone();
            mul_assign(&mut buf, c);
            div_assign(&mut buf, c);
            prop_assert_eq!(buf, data);
        }
    }
}
