//! Lookup-table slice kernels — the paper's baseline coding implementation.
//!
//! Every routine here operates byte-by-byte through the [`EXP`]/[`LOG`]
//! tables. These are the kernels the paper's Sec. 4 calls "the traditional
//! lookup-table approach"; the accelerated counterparts live in [`crate::wide`].
//!
//! All functions take raw `&[u8]` buffers: packet payloads are byte blocks and
//! interpreting them as [`crate::Gf256`] lanes is zero-cost.

use crate::tables::{EXP, LOG};

/// Multiplies every byte of `data` by the constant `c`, in place.
///
/// ```
/// # use omnc_gf256::slice;
/// let mut buf = [1u8, 2, 3];
/// slice::mul_assign(&mut buf, 2);
/// assert_eq!(buf, [2, 4, 6]);
/// ```
pub fn mul_assign(data: &mut [u8], c: u8) {
    match c {
        0 => data.fill(0),
        1 => {}
        _ => {
            let lc = LOG[c as usize] as usize;
            for b in data.iter_mut() {
                if *b != 0 {
                    *b = EXP[LOG[*b as usize] as usize + lc];
                }
            }
        }
    }
}

/// Adds (XORs) `src` into `dst` element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Computes `dst += c * src`, the inner loop of every encode, re-encode and
/// Gauss-Jordan elimination step.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// # use omnc_gf256::slice;
/// let mut acc = [0u8; 4];
/// slice::mul_add_assign(&mut acc, &[1, 2, 3, 4], 3);
/// assert_eq!(acc, [3, 6, 5, 12]);
/// ```
pub fn mul_add_assign(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    match c {
        0 => {}
        1 => add_assign(dst, src),
        _ => {
            let lc = LOG[c as usize] as usize;
            for (d, s) in dst.iter_mut().zip(src) {
                if *s != 0 {
                    *d ^= EXP[LOG[*s as usize] as usize + lc];
                }
            }
        }
    }
}

/// Divides every byte of `data` by the constant `c`, in place.
///
/// # Panics
///
/// Panics if `c` is zero.
pub fn div_assign(data: &mut [u8], c: u8) {
    assert_ne!(c, 0, "division by zero in GF(2^8)");
    if c == 1 {
        return;
    }
    let inv = EXP[255 - LOG[c as usize] as usize];
    mul_assign(data, inv);
}

/// Returns the dot product of two byte vectors over GF(2^8).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[u8], b: &[u8]) -> u8 {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    let mut acc = 0u8;
    for (&x, &y) in a.iter().zip(b) {
        if x != 0 && y != 0 {
            acc ^= EXP[LOG[x as usize] as usize + LOG[y as usize] as usize];
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf256;
    use proptest::prelude::*;

    #[test]
    fn mul_assign_special_cases() {
        let mut buf = [1u8, 2, 0, 255];
        mul_assign(&mut buf, 1);
        assert_eq!(buf, [1, 2, 0, 255]);
        mul_assign(&mut buf, 0);
        assert_eq!(buf, [0; 4]);
    }

    #[test]
    fn mul_add_assign_with_zero_coeff_is_noop() {
        let mut dst = [9u8, 8, 7];
        mul_add_assign(&mut dst, &[1, 2, 3], 0);
        assert_eq!(dst, [9, 8, 7]);
    }

    #[test]
    fn div_undoes_mul() {
        let orig: Vec<u8> = (0..=255).collect();
        for c in 1..=255u8 {
            let mut buf = orig.clone();
            mul_assign(&mut buf, c);
            div_assign(&mut buf, c);
            assert_eq!(buf, orig, "c={c}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        add_assign(&mut [0u8; 2], &[0u8; 3]);
    }

    #[test]
    fn dot_matches_scalar_arithmetic() {
        let a = [3u8, 0, 7, 9];
        let b = [5u8, 6, 0, 2];
        let want = (Gf256::new(3) * Gf256::new(5)) + (Gf256::new(9) * Gf256::new(2));
        assert_eq!(dot(&a, &b), want.as_u8());
    }

    proptest! {
        #[test]
        fn mul_add_assign_matches_scalar(
            src in proptest::collection::vec(any::<u8>(), 0..128),
            c in any::<u8>(),
            seed in any::<u8>(),
        ) {
            let mut dst: Vec<u8> = src.iter().map(|b| b.wrapping_add(seed)).collect();
            let want: Vec<u8> = dst
                .iter()
                .zip(&src)
                .map(|(&d, &s)| (Gf256::new(d) + Gf256::new(s) * Gf256::new(c)).as_u8())
                .collect();
            mul_add_assign(&mut dst, &src, c);
            prop_assert_eq!(dst, want);
        }

        #[test]
        fn mul_assign_distributes_over_add(
            a in proptest::collection::vec(any::<u8>(), 1..64),
            c in any::<u8>(),
        ) {
            // c*(a+a) == c*a + c*a == 0 in characteristic 2.
            let mut doubled = a.clone();
            add_assign(&mut doubled, &a);
            mul_assign(&mut doubled, c);
            prop_assert!(doubled.iter().all(|&b| b == 0));
        }
    }
}
