//! Product-table slice kernels: a per-call 256-entry multiplication table.
//!
//! For a whole-row operation with one constant `c`, building the complete
//! `x ↦ c·x` table first (from two 16-entry nibble tables, 32 multiplies)
//! and then streaming through the row with a single table load per byte
//! beats the log/exp route (two dependent loads, an add and a zero branch
//! per byte). This is the third kernel variant next to [`crate::slice`]
//! (the paper's baseline) and [`crate::wide`] (the paper's SSE2 analogue);
//! which one wins is host-dependent, which the `coding_speed` bench
//! measures.

use crate::tables::{EXP, LOG};

/// Builds the full 256-entry `x ↦ c·x` table from two nibble tables.
#[inline]
fn product_table(c: u8) -> [u8; 256] {
    let mul = |a: u8, b: u8| -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
        }
    };
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    for x in 0..16u8 {
        lo[x as usize] = mul(c, x);
        hi[x as usize] = mul(c, x << 4);
    }
    let mut table = [0u8; 256];
    for (x, out) in table.iter_mut().enumerate() {
        // GF(2^8) multiplication is linear over the nibble split.
        *out = lo[x & 15] ^ hi[x >> 4];
    }
    table
}

/// Multiplies every byte of `data` by the constant `c`, in place.
///
/// ```
/// # use omnc_gf256::product;
/// let mut buf = [1u8, 2, 3];
/// product::mul_assign(&mut buf, 2);
/// assert_eq!(buf, [2, 4, 6]);
/// ```
pub fn mul_assign(data: &mut [u8], c: u8) {
    match c {
        0 => data.fill(0),
        1 => {}
        _ => {
            let table = product_table(c);
            for b in data.iter_mut() {
                *b = table[*b as usize];
            }
        }
    }
}

/// Computes `dst += c * src` with one table load per byte.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// # use omnc_gf256::product;
/// let mut acc = [0u8; 4];
/// product::mul_add_assign(&mut acc, &[1, 2, 3, 4], 3);
/// assert_eq!(acc, [3, 6, 5, 12]);
/// ```
pub fn mul_add_assign(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    match c {
        0 => {}
        1 => crate::wide::add_assign(dst, src),
        _ => {
            let table = product_table(c);
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= table[*s as usize];
            }
        }
    }
}

/// Divides every byte of `data` by the constant `c`, in place.
///
/// # Panics
///
/// Panics if `c` is zero.
pub fn div_assign(data: &mut [u8], c: u8) {
    let inv = crate::Gf256::new(c)
        .inv()
        .expect("division by zero in GF(2^8)")
        .as_u8();
    mul_assign(data, inv);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice;
    use proptest::prelude::*;

    #[test]
    fn product_table_matches_scalar_multiplication() {
        for c in 0..=255u8 {
            let table = product_table(c);
            for x in 0..=255u8 {
                let want = (crate::Gf256::new(c) * crate::Gf256::new(x)).as_u8();
                assert_eq!(table[x as usize], want, "c={c} x={x}");
            }
        }
    }

    proptest! {
        #[test]
        fn product_kernels_match_table_kernels(
            src in proptest::collection::vec(any::<u8>(), 0..300),
            c in any::<u8>(),
            salt in any::<u8>(),
        ) {
            let dst: Vec<u8> = src.iter().map(|b| b.wrapping_add(salt)).collect();
            let mut a = dst.clone();
            let mut b = dst.clone();
            slice::mul_add_assign(&mut a, &src, c);
            mul_add_assign(&mut b, &src, c);
            prop_assert_eq!(&a, &b);

            let mut a2 = dst.clone();
            let mut b2 = dst;
            slice::mul_assign(&mut a2, c);
            mul_assign(&mut b2, c);
            prop_assert_eq!(a2, b2);
        }

        #[test]
        fn product_div_undoes_mul(
            data in proptest::collection::vec(any::<u8>(), 0..64),
            c in 1u8..,
        ) {
            let mut buf = data.clone();
            mul_assign(&mut buf, c);
            div_assign(&mut buf, c);
            prop_assert_eq!(buf, data);
        }
    }
}
