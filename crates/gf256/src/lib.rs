//! Arithmetic over the Rijndael finite field GF(2^8), the coding substrate of
//! OMNC (Zhang & Li, ICDCS 2008).
//!
//! The paper performs all random linear network coding operations over
//! GF(2^8) and describes two implementations (Sec. 4, *Accelerated network
//! coding*): a traditional lookup-table approach and an accelerated loop-based
//! approach that processes multiple bytes per instruction with SSE2. This
//! crate provides both, in portable Rust:
//!
//! * [`Gf256`] — a scalar field element with full arithmetic.
//! * [`mod@slice`] — log/exp lookup-table kernels (the paper's baseline).
//! * [`wide`] — wide-word SWAR kernels that process 8 bytes per loop
//!   iteration (the portable analogue of the paper's SSE2 kernels).
//! * [`product`] — per-call full product tables (one load per byte), often
//!   the fastest variant on hosts where wide ALU ops are expensive.
//!
//! # Examples
//!
//! ```
//! use omnc_gf256::Gf256;
//!
//! let a = Gf256::new(0x57);
//! let b = Gf256::new(0x83);
//! assert_eq!(a * b, Gf256::new(0xc1)); // the classic AES example
//! assert_eq!((a * b) / b, a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
pub mod product;
pub mod slice;
mod tables;
pub mod wide;

pub use arith::Gf256;
pub use tables::{EXP, LOG};

/// The Rijndael reduction polynomial x^8 + x^4 + x^3 + x + 1, as used by the
/// paper's coding framework ("Rijndael's finite field", Sec. 4).
pub const POLY: u16 = 0x11b;

/// The multiplicative generator used to build the log/exp tables.
pub const GENERATOR: u8 = 0x03;
