//! Criterion bench: GF(2^8) kernels and RLNC encoding — the quantitative
//! backing for the paper's Sec. 4 acceleration claim (3-5x).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use omnc::gf256::{product, slice, wide};
use omnc::rlnc::{
    Decoder, Encoder, Generation, GenerationConfig, GenerationId, Kernel, SystematicEncoder,
};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256_mul_add_assign");
    for size in [64usize, 1024, 4096, 16384] {
        let src: Vec<u8> = (0..size).map(|i| (i * 31 + 7) as u8).collect();
        let mut dst = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("table", size), &size, |b, _| {
            b.iter(|| slice::mul_add_assign(black_box(&mut dst), black_box(&src), 0x57))
        });
        group.bench_with_input(BenchmarkId::new("wide", size), &size, |b, _| {
            b.iter(|| wide::mul_add_assign(black_box(&mut dst), black_box(&src), 0x57))
        });
        group.bench_with_input(BenchmarkId::new("product", size), &size, |b, _| {
            b.iter(|| product::mul_add_assign(black_box(&mut dst), black_box(&src), 0x57))
        });
    }
    group.finish();
}

/// Systematic pre-coding: on a loss-free path the decoder does no
/// elimination work at all; compare full-generation decode cost.
fn bench_systematic(c: &mut Criterion) {
    let cfg = GenerationConfig::new(40, 1024).expect("valid");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut data = vec![0u8; cfg.payload_len()];
    rng.fill(&mut data[..]);
    let generation = Generation::from_bytes(GenerationId::new(0), cfg, &data).expect("sized");

    let random: Vec<_> = {
        let enc = Encoder::new(&generation);
        (0..40).map(|_| enc.emit(&mut rng)).collect()
    };
    let systematic: Vec<_> = {
        let mut enc = SystematicEncoder::new(&generation);
        (0..40).map(|_| enc.emit(&mut rng)).collect()
    };

    let mut group = c.benchmark_group("decode_40x1024_lossfree");
    group.throughput(Throughput::Bytes(cfg.payload_len() as u64));
    for (name, packets) in [("random", &random), ("systematic", &systematic)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), packets, |b, ps| {
            b.iter(|| {
                let mut dec = Decoder::new(GenerationId::new(0), cfg);
                for p in ps.iter() {
                    let _ = dec.absorb(black_box(p));
                }
                black_box(dec.recover())
            })
        });
    }
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("rlnc_encode");
    for (blocks, block_size) in [(16usize, 1024usize), (40, 1024), (64, 1024)] {
        let cfg = GenerationConfig::new(blocks, block_size).expect("valid");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut data = vec![0u8; cfg.payload_len()];
        rng.fill(&mut data[..]);
        let generation = Generation::from_bytes(GenerationId::new(0), cfg, &data).expect("sized");
        group.throughput(Throughput::Bytes(cfg.payload_len() as u64));
        for (name, kernel) in [
            ("table", Kernel::Table),
            ("wide", Kernel::Wide),
            ("product", Kernel::Product),
        ] {
            let encoder = Encoder::with_kernel(&generation, kernel);
            group.bench_with_input(
                BenchmarkId::new(name, format!("{blocks}x{block_size}")),
                &cfg,
                |b, _| b.iter(|| black_box(encoder.emit(&mut rng))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_encoding, bench_systematic);
criterion_main!(benches);
