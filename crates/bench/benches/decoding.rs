//! Criterion bench: progressive Gauss-Jordan decoding (Sec. 4) — absorb
//! cost per packet and full-generation decode, for both kernels, plus the
//! non-mutating innovation check relays run on every reception.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use omnc::rlnc::{
    CodedPacket, Decoder, Encoder, Generation, GenerationConfig, GenerationId, Kernel,
};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn generation(blocks: usize, block_size: usize) -> (GenerationConfig, Generation) {
    let cfg = GenerationConfig::new(blocks, block_size).expect("valid");
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut data = vec![0u8; cfg.payload_len()];
    rng.fill(&mut data[..]);
    (
        cfg,
        Generation::from_bytes(GenerationId::new(0), cfg, &data).expect("sized"),
    )
}

fn packets(g: &Generation, count: usize) -> Vec<CodedPacket> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let enc = Encoder::new(g);
    (0..count).map(|_| enc.emit(&mut rng)).collect()
}

fn bench_full_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_generation_decode");
    for (blocks, block_size) in [(16usize, 1024usize), (40, 1024)] {
        let (cfg, g) = generation(blocks, block_size);
        let ps = packets(&g, blocks * 2);
        group.throughput(Throughput::Bytes(cfg.payload_len() as u64));
        for (name, kernel) in [("table", Kernel::Table), ("wide", Kernel::Wide)] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{blocks}x{block_size}")),
                &cfg,
                |b, _| {
                    b.iter(|| {
                        let mut dec = Decoder::with_kernel(GenerationId::new(0), cfg, kernel);
                        for p in &ps {
                            if dec.is_complete() {
                                break;
                            }
                            let _ = dec.absorb(black_box(p));
                        }
                        black_box(dec.recover())
                    })
                },
            );
        }
    }
    group.finish();
}

/// The paper's Sec. 4 design choice: progressive Gauss-Jordan (on-the-fly)
/// vs batch decode-at-the-end. Same total work order, but batch pays it all
/// at recovery time and stores redundant packets blindly.
fn bench_progressive_vs_batch(c: &mut Criterion) {
    use omnc::rlnc::BatchDecoder;
    let (cfg, g) = generation(40, 1024);
    let ps = packets(&g, 60);
    let mut group = c.benchmark_group("progressive_vs_batch_40x1024");
    group.throughput(Throughput::Bytes(cfg.payload_len() as u64));
    group.bench_function("progressive", |b| {
        b.iter(|| {
            let mut dec = Decoder::new(GenerationId::new(0), cfg);
            for p in &ps {
                if dec.is_complete() {
                    break;
                }
                let _ = dec.absorb(black_box(p));
            }
            black_box(dec.recover())
        })
    });
    group.bench_function("batch", |b| {
        b.iter(|| {
            let mut dec = BatchDecoder::new(GenerationId::new(0), cfg);
            for p in &ps {
                let _ = dec.push(black_box(p.clone()));
            }
            black_box(dec.solve())
        })
    });
    group.finish();
}

fn bench_innovation_check(c: &mut Criterion) {
    // The relay fast path: a non-mutating innovation check on a half-full
    // buffer (coefficients only — no payload arithmetic).
    let (cfg, g) = generation(40, 1024);
    let ps = packets(&g, 60);
    let mut dec = Decoder::new(GenerationId::new(0), cfg);
    for p in ps.iter().take(20) {
        let _ = dec.absorb(p);
    }
    let probe = &ps[40];
    c.bench_function("innovation_check_half_full_40x1024", |b| {
        b.iter(|| black_box(dec.would_be_innovative(black_box(probe))))
    });
}

criterion_group!(
    benches,
    bench_full_decode,
    bench_progressive_vs_batch,
    bench_innovation_check
);
criterion_main!(benches);
