//! Criterion bench: cost of the rate-control machinery — one subgradient
//! iteration-equivalent (a full run divided by its iteration count is
//! reported in the harness output), the exact LP solve, and max flow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omnc::net_topo::deploy::Deployment;
use omnc::net_topo::phy::Phy;
use omnc::net_topo::select::select_forwarders;
use omnc::omnc_opt::{flow, lp, RateControl, SUnicast};
use std::hint::black_box;

fn instance(nodes: usize, seed: u64) -> SUnicast {
    let phy = Phy::paper_lossy();
    let topo = Deployment::random(nodes, 6.0, &phy, seed).into_topology();
    let (s, d) = topo.farthest_pair();
    let sel = select_forwarders(&topo, s, d);
    SUnicast::from_selection(&topo, &sel, 1e5)
}

fn bench_rate_control(c: &mut Criterion) {
    let mut group = c.benchmark_group("rate_control_run");
    group.sample_size(10);
    for nodes in [30usize, 60, 120] {
        let problem = instance(nodes, 42);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &problem, |b, p| {
            b.iter(|| black_box(RateControl::new(p).run()))
        });
    }
    group.finish();
}

fn bench_exact_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("sunicast_exact_lp");
    group.sample_size(10);
    for nodes in [30usize, 60] {
        let problem = instance(nodes, 42);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &problem, |b, p| {
            b.iter(|| black_box(lp::solve_exact(p).expect("solvable")))
        });
    }
    group.finish();
}

fn bench_max_flow(c: &mut Criterion) {
    let problem = instance(60, 42);
    let b_vec = vec![0.2; problem.node_count()];
    c.bench_function("supported_rate_60_nodes", |b| {
        b.iter(|| black_box(flow::supported_rate(&problem, black_box(&b_vec))))
    });
}

criterion_group!(benches, bench_rate_control, bench_exact_lp, bench_max_flow);
criterion_main!(benches);
