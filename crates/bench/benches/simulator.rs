//! Criterion bench: Drift event-loop throughput — full protocol sessions
//! per second at the test scale, for each protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omnc::runner::{run_session, Protocol};
use omnc::scenario::Scenario;
use std::hint::black_box;

fn bench_sessions(c: &mut Criterion) {
    let mut scenario = Scenario::small_test();
    scenario.nodes = 60;
    scenario.session.payload_block_size = 1; // charge full wire, skip payload math
    scenario.session.duration = 30.0;
    let (topology, src, dst) = scenario.build_session(0);

    let mut group = c.benchmark_group("drift_session_30s");
    group.sample_size(10);
    for protocol in Protocol::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.name()),
            &protocol,
            |b, &p| b.iter(|| black_box(run_session(&topology, src, dst, p, &scenario.session, 7))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sessions);
criterion_main!(benches);
