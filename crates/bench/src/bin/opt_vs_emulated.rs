//! **Sec. 5 claim**: "the actual emulated throughput of OMNC tends to be
//! lower than the optimized throughput computed by the sUnicast framework,
//! especially for the non-lossy case" — because the broadcast constraint
//! only approximates how innovative flows propagate.
//!
//! ```sh
//! cargo run --release -p omnc-bench --bin opt_vs_emulated
//! ```

use omnc::metrics::Cdf;
use omnc::runner::Protocol;
use omnc::scenario::Quality;
use omnc_bench::{export_rows, run_sweep, Options};

fn main() {
    let mut opts = Options::from_args();
    let sink = opts.json_sink();
    let mut ratios = Vec::new();
    for quality in [Quality::Lossy, Quality::High] {
        opts.quality = quality;
        let scenario = opts.scenario();
        let rows = run_sweep(&scenario, &[Protocol::Omnc], &opts.logger());
        if let Some(sink) = sink.as_ref() {
            export_rows(sink, &rows);
        }
        let cdf: Cdf = rows
            .iter()
            .filter_map(|r| {
                let o = &r.outcomes[0];
                o.predicted_throughput
                    .filter(|&p| p > 0.0)
                    .map(|p| o.throughput / p)
            })
            .collect();
        println!(
            "{:?}: emulated/optimized ratio mean {:.2}, median {:.2} (n={})",
            quality,
            cdf.mean(),
            cdf.median(),
            cdf.len()
        );
        ratios.push(cdf.mean());
    }
    println!();
    println!("# paper: emulated < optimized everywhere, gap widest for high quality.");
    println!(
        "# measured: lossy ratio {:.2} vs high-quality ratio {:.2} — {}",
        ratios[0],
        ratios[1],
        if ratios[1] <= ratios[0] + 0.05 {
            "gap direction reproduced"
        } else {
            "gap direction NOT reproduced"
        }
    );
}
