//! **Ablation**: the diminishing step size `θ(t) = A/(B + C·t)` (which the
//! paper adopts for guaranteed convergence) against constant step sizes,
//! measured as optimality ratio vs the exact LP and iterations used.
//!
//! ```sh
//! cargo run --release -p omnc-bench --bin ablate_step_size
//! ```

use omnc::net_topo::select::select_forwarders;
use omnc::omnc_opt::{lp, RateControl, RateControlParams, SUnicast, StepSize};
use omnc_bench::Options;
use serde::Serialize;

/// One JSONL line per (schedule, session).
#[derive(Serialize)]
struct StepRecord {
    schedule: String,
    session: u64,
    optimality_ratio: f64,
    iterations: usize,
}

fn main() {
    let opts = Options::from_args();
    let sink = opts.json_sink();
    let mut scenario = opts.scenario();
    scenario.sessions = scenario.sessions.min(12);
    let topology = scenario.build_topology();

    let schedules = [
        (
            "paper A/(B+Ct), C=10",
            StepSize::Diminishing {
                a: 1.0,
                b: 0.5,
                c: 10.0,
            },
        ),
        (
            "diminishing, C=3",
            StepSize::Diminishing {
                a: 1.0,
                b: 0.5,
                c: 3.0,
            },
        ),
        (
            "diminishing, C=30",
            StepSize::Diminishing {
                a: 1.0,
                b: 0.5,
                c: 30.0,
            },
        ),
        ("constant 0.05", StepSize::Constant(0.05)),
        ("constant 0.01", StepSize::Constant(0.01)),
    ];

    println!(
        "# Ablation: step-size schedule, {} sessions",
        scenario.sessions
    );
    println!(
        "{:<24} {:>12} {:>12}",
        "schedule", "opt. ratio", "iterations"
    );
    for (name, step) in schedules {
        let mut ratios = Vec::new();
        let mut iters = Vec::new();
        for k in 0..scenario.sessions as u64 {
            let (_, src, dst) = scenario.build_session(k);
            let sel = select_forwarders(&topology, src, dst);
            let problem = SUnicast::from_selection(&topology, &sel, scenario.session.capacity);
            let exact = lp::solve_exact(&problem).expect("solvable");
            let params = RateControlParams {
                step,
                ..Default::default()
            };
            let alloc = RateControl::with_params(&problem, params).run();
            if let Some(sink) = &sink {
                sink.emit(&StepRecord {
                    schedule: name.to_string(),
                    session: k,
                    optimality_ratio: alloc.throughput() / exact.gamma,
                    iterations: alloc.iterations(),
                })
                .expect("JSONL export failed");
            }
            ratios.push(alloc.throughput() / exact.gamma);
            iters.push(alloc.iterations() as f64);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!("{name:<24} {:>11.3} {:>12.0}", mean(&ratios), mean(&iters));
    }
    println!("# paper: diminishing steps guarantee convergence regardless of");
    println!("# initialization; constant steps oscillate.");
}
