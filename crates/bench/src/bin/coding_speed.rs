//! **Sec. 4 claim**: the accelerated loop-based GF(2^8) kernels are "3 to 5
//! times" faster than the traditional lookup-table approach, "depending on
//! the size of a generation and a data block".
//!
//! ```sh
//! cargo run --release -p omnc-bench --bin coding_speed
//! ```

use std::time::Instant;

use omnc::rlnc::{Decoder, Encoder, Generation, GenerationConfig, GenerationId, Kernel};
use omnc_bench::Options;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// One JSONL line per measured (shape, kernel) cell.
#[derive(Serialize)]
struct KernelRecord {
    blocks: usize,
    block_size: usize,
    kernel: String,
    mb_per_s: f64,
    speedup_vs_table: f64,
}

fn main() {
    let opts = Options::from_args();
    let sink = opts.json_sink();
    println!("# Sec. 4 — encode+decode throughput by GF(2^8) kernel");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "blocks", "blocksize", "table MB/s", "wide MB/s", "prod MB/s", "wide/tab", "prod/tab"
    );
    let mut wide_speedups = Vec::new();
    let mut prod_speedups = Vec::new();
    for &(blocks, block_size) in &[
        (16usize, 256usize),
        (16, 1024),
        (40, 1024),
        (40, 4096),
        (64, 1024),
    ] {
        let table = run_pipeline(blocks, block_size, Kernel::Table);
        let wide = run_pipeline(blocks, block_size, Kernel::Wide);
        let prod = run_pipeline(blocks, block_size, Kernel::Product);
        if let Some(sink) = &sink {
            for (kernel, mb_per_s) in [("table", table), ("wide", wide), ("product", prod)] {
                sink.emit(&KernelRecord {
                    blocks,
                    block_size,
                    kernel: kernel.to_string(),
                    mb_per_s,
                    speedup_vs_table: mb_per_s / table,
                })
                .expect("JSONL export failed");
            }
        }
        wide_speedups.push(wide / table);
        prod_speedups.push(prod / table);
        println!(
            "{blocks:>10} {block_size:>10} {table:>12.1} {wide:>12.1} {prod:>12.1} {:>9.2}x {:>9.2}x",
            wide / table,
            prod / table,
        );
    }
    let range = |v: &[f64]| {
        (
            v.iter().cloned().fold(f64::INFINITY, f64::min),
            v.iter().cloned().fold(0.0f64, f64::max),
        )
    };
    let (w_lo, w_hi) = range(&wide_speedups);
    let (p_lo, p_hi) = range(&prod_speedups);
    println!();
    println!("# paper: accelerated coding 3-5x faster than the table baseline (on");
    println!("# 2008 x86 with SSE2; the ratio is strongly host-dependent).");
    println!(
        "# measured here: wide/table {w_lo:.1}x-{w_hi:.1}x, product/table {p_lo:.1}x-{p_hi:.1}x"
    );
    println!("# (virtualized/emulated hosts flatten ALU-vs-lookup differences;");
    println!("#  see EXPERIMENTS.md for the discussion)");
}

/// Encodes and progressively decodes one generation; returns the payload
/// throughput in MB/s.
fn run_pipeline(blocks: usize, block_size: usize, kernel: Kernel) -> f64 {
    let cfg = GenerationConfig::new(blocks, block_size).expect("positive dims");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut data = vec![0u8; cfg.payload_len()];
    rng.fill(&mut data[..]);
    let generation = Generation::from_bytes(GenerationId::new(0), cfg, &data).expect("sized");
    let encoder = Encoder::with_kernel(&generation, kernel);

    // Warm up, then measure enough repetitions for a stable figure.
    let reps = (64 * 1024 * 1024 / cfg.payload_len()).clamp(4, 400);
    let mut bytes = 0usize;
    let start = Instant::now();
    for _ in 0..reps {
        let mut decoder = Decoder::with_kernel(GenerationId::new(0), cfg, kernel);
        while !decoder.is_complete() {
            let packet = encoder.emit(&mut rng);
            let _ = decoder.absorb(&packet);
        }
        assert_eq!(decoder.recover().expect("complete"), data);
        bytes += cfg.payload_len();
    }
    bytes as f64 / start.elapsed().as_secs_f64() / 1e6
}
