//! `perf_smoke` — seeded end-to-end performance smoke test feeding the
//! CI perf trajectory and the span-profile gate.
//!
//! ```sh
//! cargo run --release -p omnc-bench --bin perf_smoke -- \
//!     --out BENCH_2026-08-06.json --profile profile.json
//! ```
//!
//! Measures four wall-clock figures on fixed seeded workloads:
//!
//! * RLNC encode throughput (MB/s, Product kernel)
//! * RLNC full-pipeline decode throughput (MB/s)
//! * simulator throughput (coded packets absorbed per wall second) over
//!   a seeded OMNC session sweep
//! * rate-control optimizer iterations per wall second on the Fig. 1
//!   sample problem
//!
//! Wall-clock numbers vary by host, so the `--out` JSON is a perf
//! *trajectory* (one `BENCH_<date>.json` per run of `scripts/bench.sh`),
//! not a hard gate. The deterministic gate artifacts are the span
//! profile (`--profile`, virtual clock) and the allocation report
//! (`--alloc-out`): identical seeded runs produce identical span call
//! counts and allocation counts on any host, so CI fails hard on
//! `omnc-report profile compare --metric calls` and on
//! `omnc-report compare` against `ALLOC_baseline.json`.
//!
//! Allocation counting (the [`CountingAlloc`] global allocator plus
//! thread-local counters) is on by default; `--no-count-allocs` turns
//! the counters off to measure the uninstrumented wall-clock numbers.

use std::collections::BTreeMap;
use std::time::Instant;

use omnc::multi::run_multi_session;
use omnc::rlnc::{Decoder, Encoder, Generation, GenerationConfig, GenerationId, Kernel};
use omnc::runner::{run_session_traced, Protocol, RunOptions};
use omnc::telemetry::{sample_rss, set_alloc_counting, AllocScope, CountingAlloc, Profiler};
use omnc_bench::Options;
use rand::{Rng, SeedableRng};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = Options::from_slice(&args);
    let log = opts.logger();
    let mut out_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut folded_path: Option<String> = None;
    let mut alloc_out: Option<String> = None;
    let mut count_allocs = true;
    let mut trajectory_reset = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_path = it.next().cloned(),
            "--profile" => profile_path = it.next().cloned(),
            "--profile-folded" => folded_path = it.next().cloned(),
            "--alloc-out" => alloc_out = it.next().cloned(),
            "--no-count-allocs" => count_allocs = false,
            "--trajectory-reset" => trajectory_reset = true,
            _ => {} // everything else belongs to Options
        }
    }
    set_alloc_counting(count_allocs);

    let mut metrics: BTreeMap<String, f64> = BTreeMap::new();

    let coding = coding_throughput(opts.seed);
    metrics.insert("rlnc/encode_mb_per_s".into(), coding.encode_mb_s);
    metrics.insert("rlnc/decode_mb_per_s".into(), coding.decode_mb_s);
    log.info(&format!(
        "rlnc: encode {:.1} MB/s, decode pipeline {:.1} MB/s",
        coding.encode_mb_s, coding.decode_mb_s
    ));

    // The profiled pass is untimed: span bookkeeping (and the first-touch
    // topology build) stay out of the wall-clock figure, which measures
    // the bare event-queue engine below.
    let profiler = Profiler::virtual_clock();
    sim_profile_pass(&opts, &profiler);
    let sim_scope = AllocScope::start();
    let (packets_per_s, sessions, packets) = sim_throughput(&opts);
    let sim_alloc = AllocFootprint::capture(packets, &sim_scope);
    metrics.insert("sim/packets_per_s".into(), packets_per_s);
    metrics.insert("sim/sessions".into(), sessions as f64);
    log.info(&format!(
        "sim: {packets_per_s:.0} MAC packet events/s over {sessions} seeded OMNC sessions"
    ));

    let multi_scope = AllocScope::start();
    let multi = multi_sim_throughput(&log);
    let multi_alloc = AllocFootprint::capture(multi.mac_packets, &multi_scope);
    metrics.insert("sim/multi_packets_per_s".into(), multi.packets_per_s);
    metrics.insert("sim/sessions_completed".into(), multi.completed as f64);
    log.info(&format!(
        "multi: {:.0} MAC packet events/s, {}/{} sessions completed on {}",
        multi.packets_per_s, multi.completed, multi.sessions, multi.name
    ));

    let opt_scope = AllocScope::start();
    let (iters_per_s, iterations) = opt_throughput();
    let opt_alloc = AllocFootprint::capture(iterations, &opt_scope);
    metrics.insert("opt/iterations_per_s".into(), iters_per_s);
    log.info(&format!("opt: {iters_per_s:.0} rate-control iterations/s"));

    let (counter_ops_per_s, serve_lost_frac) = export_overhead();
    metrics.insert("export/counter_ops_per_s".into(), counter_ops_per_s);
    metrics.insert("export/serve_lost_frac".into(), serve_lost_frac);
    log.info(&format!(
        "export: {counter_ops_per_s:.0} counter ops/s bare, {:.1}% lost to a live /metrics observer",
        serve_lost_frac * 100.0
    ));

    // Allocation metrics are deterministic per-op counts on the seeded
    // workloads; peak RSS is host-dependent and gated with a wide
    // tolerance. Both live under lower-is-better gate prefixes.
    let mut alloc_metrics: BTreeMap<String, f64> = BTreeMap::new();
    if count_allocs {
        coding
            .encode_alloc
            .record(&mut alloc_metrics, "rlnc_encode");
        coding
            .decode_alloc
            .record(&mut alloc_metrics, "rlnc_decode");
        sim_alloc.record(&mut alloc_metrics, "sim_dispatch");
        multi_alloc.record(&mut alloc_metrics, "multi_dispatch");
        opt_alloc.record(&mut alloc_metrics, "opt_iteration");
    }
    if let Some(rss) = sample_rss() {
        alloc_metrics.insert(
            "mem/peak_rss_mb".into(),
            rss.vm_hwm_bytes as f64 / (1024.0 * 1024.0),
        );
    }
    metrics.extend(alloc_metrics.iter().map(|(k, v)| (k.clone(), *v)));

    println!("{:>34} {:>14}", "metric", "value");
    for (name, value) in &metrics {
        println!("{name:>34} {value:>14.2}");
    }

    if let Some(path) = &out_path {
        let record = BenchRecord {
            bench: "perf-smoke".to_string(),
            seed: opts.seed,
            metrics: metrics.clone(),
            reset: trajectory_reset,
        };
        let json = serde_json::to_string(&record).expect("bench record serializes");
        std::fs::write(path, json + "\n")
            .unwrap_or_else(|e| panic!("cannot write --out {path}: {e}"));
        log.info(&format!("bench record -> {path}"));
    }
    if let Some(path) = &alloc_out {
        // Shaped like an `omnc-report analyze --json` report so
        // `omnc-report compare` gates it against ALLOC_baseline.json
        // without a dedicated schema.
        let map = serde_json::to_string(&alloc_metrics).expect("alloc metrics serialize");
        let json = format!("{{\"sessions\":[],\"convergence\":null,\"metrics\":{map}}}");
        std::fs::write(path, json + "\n")
            .unwrap_or_else(|e| panic!("cannot write --alloc-out {path}: {e}"));
        log.info(&format!(
            "alloc report: {} metrics -> {path}",
            alloc_metrics.len()
        ));
    }
    let report = profiler.report();
    if let Some(path) = &profile_path {
        let json = serde_json::to_string(&report).expect("profile serializes");
        std::fs::write(path, json + "\n")
            .unwrap_or_else(|e| panic!("cannot write --profile {path}: {e}"));
        log.info(&format!(
            "profile: {} spans ({} clock) -> {path}",
            report.spans.len(),
            report.clock
        ));
    }
    if let Some(path) = &folded_path {
        std::fs::write(path, report.folded())
            .unwrap_or_else(|e| panic!("cannot write --profile-folded {path}: {e}"));
        log.info(&format!("folded stacks -> {path}"));
    }
}

/// The `BENCH_<date>.json` line: metric map plus enough context to read
/// a trajectory of these files without the producing commit. `reset`
/// marks the record as the start of a fresh trend epoch (see
/// `omnc-report trend`); `scripts/bench.sh --regen` sets it via
/// `--trajectory-reset` so an intentional workload change re-bases the
/// drift fit along with the other baselines.
#[derive(serde::Serialize)]
struct BenchRecord {
    bench: String,
    seed: u64,
    metrics: BTreeMap<String, f64>,
    reset: bool,
}

/// One bench family's allocation footprint: operations performed while
/// its [`AllocScope`] was open and the allocator-counter deltas.
struct AllocFootprint {
    ops: u64,
    allocs: u64,
    bytes: u64,
}

impl AllocFootprint {
    fn capture(ops: u64, scope: &AllocScope) -> AllocFootprint {
        let delta = scope.delta();
        AllocFootprint {
            ops,
            allocs: delta.alloc_events(),
            bytes: delta.bytes_allocated,
        }
    }

    fn record(&self, metrics: &mut BTreeMap<String, f64>, family: &str) {
        if self.ops == 0 {
            return;
        }
        let ops = self.ops as f64;
        metrics.insert(
            format!("alloc/{family}/allocs_per_op"),
            self.allocs as f64 / ops,
        );
        metrics.insert(
            format!("alloc/{family}/bytes_per_op"),
            self.bytes as f64 / ops,
        );
    }
}

/// Throughput and allocation footprint of the coding benches.
struct CodingBench {
    encode_mb_s: f64,
    decode_mb_s: f64,
    encode_alloc: AllocFootprint,
    decode_alloc: AllocFootprint,
}

/// Encode-only and encode+decode throughput (payload MB/s) of one
/// 40x1024 generation under the Product kernel, with per-emit /
/// per-absorb allocation footprints.
fn coding_throughput(seed: u64) -> CodingBench {
    let cfg = GenerationConfig::new(40, 1024).expect("positive dims");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut data = vec![0u8; cfg.payload_len()];
    rng.fill(&mut data[..]);
    let generation = Generation::from_bytes(GenerationId::new(0), cfg, &data).expect("sized");
    let encoder = Encoder::with_kernel(&generation, Kernel::Product);

    let reps = (32 * 1024 * 1024 / cfg.payload_len()).clamp(4, 200);
    let scope = AllocScope::start();
    let start = Instant::now();
    for _ in 0..reps {
        for _ in 0..cfg.blocks() {
            std::hint::black_box(encoder.emit(&mut rng));
        }
    }
    let encode_mb_s = (reps * cfg.payload_len()) as f64 / start.elapsed().as_secs_f64() / 1e6;
    let encode_alloc = AllocFootprint::capture((reps * cfg.blocks()) as u64, &scope);

    let mut absorbs = 0u64;
    let scope = AllocScope::start();
    let start = Instant::now();
    for _ in 0..reps {
        let mut decoder = Decoder::with_kernel(GenerationId::new(0), cfg, Kernel::Product);
        while !decoder.is_complete() {
            let packet = encoder.emit(&mut rng);
            let _ = decoder.absorb(&packet);
            absorbs += 1;
        }
        assert_eq!(decoder.recover().expect("complete"), data);
    }
    let decode_mb_s = (reps * cfg.payload_len()) as f64 / start.elapsed().as_secs_f64() / 1e6;
    let decode_alloc = AllocFootprint::capture(absorbs, &scope);
    CodingBench {
        encode_mb_s,
        decode_mb_s,
        encode_alloc,
        decode_alloc,
    }
}

/// The fixed small sweep behind both simulator passes: large enough to
/// exercise encode/recode/decode and the optimizer, small enough to
/// finish in seconds.
fn sim_scenario(opts: &Options) -> omnc::scenario::Scenario {
    let mut scenario = opts.scenario();
    if opts.nodes.is_none() {
        scenario.nodes = 30;
    }
    if opts.sessions.is_none() {
        scenario.sessions = 2;
    }
    scenario.session.duration = scenario.session.duration.min(30.0);
    scenario
}

/// Runs one seeded OMNC session sweep under `options`.
fn run_sim_sweep(scenario: &omnc::scenario::Scenario, options: &RunOptions) {
    let topology = scenario.build_topology();
    for (k, seed) in scenario.session_seeds().enumerate() {
        let (_, src, dst) = scenario.build_session(k as u64);
        let (out, _) = run_session_traced(
            &topology,
            src,
            dst,
            Protocol::Omnc,
            &scenario.session,
            seed,
            options,
        );
        std::hint::black_box(out.packet_counts);
    }
}

/// The untimed profiled pass: identical workload to [`sim_throughput`],
/// run with the span profiler attached so the deterministic profile-gate
/// artifact has its call counts without taxing the timed pass.
fn sim_profile_pass(opts: &Options, profiler: &Profiler) {
    let options = RunOptions {
        profiler: profiler.clone(),
        ..RunOptions::default()
    };
    run_sim_sweep(&sim_scenario(opts), &options);
}

/// The timed pass: the same seeded sweep with profiling off, returning
/// (MAC packet events per wall second, sessions run, events). The
/// numerator counts completed transmissions plus per-receiver deliveries
/// — every packet event the event-queue engine dispatched — read from the
/// simulator's own MAC counters.
fn sim_throughput(opts: &Options) -> (f64, usize, u64) {
    use omnc::telemetry::Registry;

    let scenario = sim_scenario(opts);
    let registry = Registry::new();
    let options = RunOptions {
        registry: registry.clone(),
        ..RunOptions::default()
    };
    let start = Instant::now();
    run_sim_sweep(&scenario, &options);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let packets =
        registry.counter("mac.tx.completed").get() + registry.counter("mac.delivered").get();
    (packets as f64 / elapsed, scenario.sessions, packets)
}

/// What the committed multi-session mesh benchmark measured.
struct MultiBench {
    name: String,
    packets_per_s: f64,
    sessions: usize,
    completed: usize,
    mac_packets: u64,
}

/// The committed multi-session scenario: everything needed to rebuild
/// the [`omnc::scenario::Scenario`] from the JSON spec in
/// `crates/bench/specs/`.
#[derive(serde::Deserialize)]
struct MultiBenchSpec {
    name: String,
    nodes: usize,
    density: f64,
    quality: omnc::scenario::Quality,
    sessions: usize,
    hops: (usize, usize),
    seed: u64,
    protocol: Protocol,
    session: omnc::session::SessionConfig,
}

/// Runs the committed 1000-node / 100-session concurrent workload on one
/// shared simulator and returns MAC packet events per wall second plus
/// the completed-session count. The timed region is `run_multi_session`
/// itself — the joint rate control plus the coupled event loop; topology
/// construction and endpoint draws are setup.
fn multi_sim_throughput(log: &telemetry::Logger) -> MultiBench {
    let spec: MultiBenchSpec =
        serde_json::from_str(include_str!("../../specs/multi_mesh_1000x100.json"))
            .expect("committed multi-mesh spec parses");
    let scenario = omnc::scenario::Scenario {
        nodes: spec.nodes,
        density: spec.density,
        quality: spec.quality,
        sessions: spec.sessions,
        hops: spec.hops,
        session: spec.session,
        seed: spec.seed,
    };
    let (topology, endpoints) = scenario.build_multi();
    log.info(&format!(
        "multi: {} — {} nodes, {} links, {} concurrent sessions x {:.0}s",
        spec.name,
        topology.len(),
        topology.link_count(),
        endpoints.len(),
        scenario.session.duration
    ));
    let options = RunOptions::default();
    let start = Instant::now();
    let (out, _) = run_multi_session(
        &topology,
        &endpoints,
        spec.protocol,
        &scenario.session,
        spec.seed,
        &options,
    );
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    MultiBench {
        name: spec.name,
        packets_per_s: out.mac_packets as f64 / elapsed,
        sessions: endpoints.len(),
        completed: out.sessions_completed,
        mac_packets: out.mac_packets,
    }
}

/// Hot-path counter throughput with and without a live `/metrics`
/// observer being scraped. Returns (bare counter ops per wall second,
/// fraction of that throughput lost while being observed).
///
/// The served pass keeps the scrape handling inside the timed window,
/// so the lost fraction is the end-to-end cost of observation — exactly
/// what a campaign pays for `--serve`. Its metric name carries the
/// `lost` needle, so the trend gate treats it as lower-is-better; the
/// raw ops/s figure rides along as the higher-is-better companion.
fn export_overhead() -> (f64, f64) {
    use omnc::telemetry::{Observer, ObserverHandles, Registry};

    const OPS: u64 = 2_000_000;
    const SCRAPES: u64 = 16;

    let workload = |registry: &Registry, observer: Option<&Observer>| -> f64 {
        let counter = registry.counter("export.bench.ops");
        let gauge = registry.gauge("export.bench.progress");
        let stride = OPS / SCRAPES;
        let start = Instant::now();
        for i in 0..OPS {
            counter.inc();
            if i % 1024 == 0 {
                gauge.set(i as f64);
            }
            if let Some(obs) = observer {
                if i % stride == stride - 1 {
                    scrape_metrics(obs.local_addr());
                }
            }
        }
        std::hint::black_box(counter.get());
        start.elapsed().as_secs_f64().max(1e-9)
    };

    let bare = Registry::new();
    let bare_s = workload(&bare, None);

    let served = Registry::new();
    let handles = ObserverHandles {
        registry: served.clone(),
        ..ObserverHandles::default()
    };
    let observer = Observer::serve("127.0.0.1:0", handles).expect("observer binds on loopback");
    let served_s = workload(&served, Some(&observer));
    drop(observer);

    let ops_per_s = OPS as f64 / bare_s;
    let lost_frac = (1.0 - bare_s / served_s).max(0.0);
    (ops_per_s, lost_frac)
}

/// One blocking HTTP/1.0 self-scrape of `/metrics`; errors are ignored
/// (the bench measures cost, not availability — CI asserts that
/// separately).
fn scrape_metrics(addr: std::net::SocketAddr) {
    use std::io::{Read, Write};
    let Ok(mut stream) = std::net::TcpStream::connect(addr) else {
        return;
    };
    let _ = stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: bench\r\n\r\n");
    let mut body = String::new();
    let _ = stream.read_to_string(&mut body);
    std::hint::black_box(body.len());
}

/// Rate-control (iterations per wall second, iterations) on the Fig. 1
/// sample problem.
fn opt_throughput() -> (f64, u64) {
    use omnc::net_topo::graph::{Link, NodeId, Topology};
    use omnc::net_topo::select::select_forwarders;
    use omnc::omnc_opt::{RateControl, RateControlParams};

    let links = vec![
        Link {
            from: NodeId::new(0),
            to: NodeId::new(1),
            p: 0.8,
        },
        Link {
            from: NodeId::new(0),
            to: NodeId::new(2),
            p: 0.5,
        },
        Link {
            from: NodeId::new(1),
            to: NodeId::new(3),
            p: 0.6,
        },
        Link {
            from: NodeId::new(2),
            to: NodeId::new(3),
            p: 0.9,
        },
        Link {
            from: NodeId::new(1),
            to: NodeId::new(2),
            p: 0.7,
        },
    ];
    let topology = Topology::from_links(4, links).expect("valid sample topology");
    let selection = select_forwarders(&topology, NodeId::new(0), NodeId::new(3));
    let problem = omnc::omnc_opt::SUnicast::from_selection(&topology, &selection, 1e5);
    let params = RateControlParams {
        max_iterations: 200,
        tolerance: 1e-12, // run the full horizon so the count is fixed
        ..Default::default()
    };
    let rounds = 25;
    let mut iterations = 0u64;
    let start = Instant::now();
    for _ in 0..rounds {
        let (_, trace) = RateControl::with_params(&problem, params)
            .with_trace()
            .run_traced();
        iterations += trace.records.len() as u64;
    }
    (
        iterations as f64 / start.elapsed().as_secs_f64().max(1e-9),
        iterations,
    )
}
