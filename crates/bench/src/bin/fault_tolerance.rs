//! **Extension experiment**: relay failure mid-session.
//!
//! The paper's introduction motivates multipath routing with fault
//! tolerance; OMNC's implicit multipath should inherit it. This bench
//! crash-stops the busiest relay of the ETX path halfway through every
//! session and compares how much throughput each protocol retains relative
//! to its own fault-free run.
//!
//! ```sh
//! cargo run --release -p omnc-bench --bin fault_tolerance
//! ```

use omnc::metrics::Cdf;
use omnc::net_topo::etx;
use omnc::runner::{run_session, run_session_with_fault, Protocol};
use omnc_bench::Options;
use serde::Serialize;

/// One JSONL line per (protocol, session) fault experiment.
#[derive(Serialize)]
struct FaultRecord {
    protocol: String,
    session: u64,
    healthy_throughput: f64,
    faulty_throughput: f64,
    retention: f64,
}

fn main() {
    let opts = Options::from_args();
    let sink = opts.json_sink();
    let mut scenario = opts.scenario();
    scenario.sessions = scenario.sessions.min(20);
    let topology = scenario.build_topology();

    let mut retention: Vec<(Protocol, Vec<f64>)> =
        Protocol::ALL.iter().map(|&p| (p, Vec::new())).collect();

    for (k, seed) in scenario.session_seeds().enumerate() {
        let (_, src, dst) = scenario.build_session(k as u64);
        // Kill the first relay of the ETX best path (every protocol leans on
        // it: it is on the highest-quality route) halfway through.
        let path = etx::best_path(&topology, src, dst).expect("connected session");
        let victim = path[1];
        if victim == dst {
            continue; // 1-hop path: nothing to kill
        }
        let kill_at = scenario.session.duration / 2.0;
        for (protocol, samples) in &mut retention {
            let healthy = run_session(&topology, src, dst, *protocol, &scenario.session, seed);
            if healthy.throughput <= 0.0 {
                continue;
            }
            let faulty = run_session_with_fault(
                &topology,
                src,
                dst,
                *protocol,
                &scenario.session,
                seed,
                Some((victim, kill_at)),
            );
            if let Some(sink) = &sink {
                sink.emit(&FaultRecord {
                    protocol: protocol.name().to_string(),
                    session: k as u64,
                    healthy_throughput: healthy.throughput,
                    faulty_throughput: faulty.throughput,
                    retention: faulty.throughput / healthy.throughput,
                })
                .expect("JSONL export failed");
            }
            samples.push(faulty.throughput / healthy.throughput);
        }
    }

    println!("# Fault tolerance: busiest ETX relay crash-stops at T/2");
    println!("# (throughput retained relative to the protocol's own fault-free run)");
    for (protocol, samples) in &retention {
        if samples.is_empty() {
            continue;
        }
        let cdf = Cdf::new(samples.clone());
        println!(
            "{:>8}: mean retention {:.2}, median {:.2}  (n={})",
            protocol.name(),
            cdf.mean(),
            cdf.median(),
            cdf.len()
        );
    }
    println!();
    println!("# expectation: coded multipath protocols route around the dead relay");
    println!("# (retention well above 0.5); single-path ETX loses everything after");
    println!("# the fault (retention ~0.5 = only the pre-fault half survived).");
}
