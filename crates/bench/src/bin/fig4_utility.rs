//! **Figure 4**: CDFs of node utility ratio and path utility ratio in the
//! lossy network.
//!
//! The paper shows oldMORE pruning a large share of nodes and paths (its
//! min-cost formulation favors the high-quality path), while OMNC — and
//! the newer MORE — involve nearly all selected nodes and paths.
//!
//! ```sh
//! cargo run --release -p omnc-bench --bin fig4_utility
//! ```

use omnc::metrics::{render_cdf, Cdf};
use omnc::runner::Protocol;
use omnc_bench::{export_rows, run_sweep, Options};

fn main() {
    let opts = Options::from_args();
    let scenario = opts.scenario();
    let rows = run_sweep(
        &scenario,
        &[Protocol::Omnc, Protocol::More, Protocol::OldMore],
        &opts.logger(),
    );
    if let Some(sink) = opts.json_sink() {
        export_rows(&sink, &rows);
    }

    println!("# Fig. 4 — utility ratios, {} sessions", rows.len());
    for (metric, pick) in [
        ("node utility ratio", 0usize),
        ("path utility ratio", 1usize),
    ] {
        println!("## {metric}");
        for (idx, name) in [(0usize, "OMNC"), (1, "MORE"), (2, "oldMORE")] {
            let cdf: Cdf = rows
                .iter()
                .map(|r| {
                    if pick == 0 {
                        r.outcomes[idx].node_utility
                    } else {
                        r.outcomes[idx].path_utility
                    }
                })
                .collect();
            println!("{}", render_cdf(&format!("{name} {metric}"), &cdf, 10));
        }
    }

    let mean = |idx: usize, node: bool| -> f64 {
        let cdf: Cdf = rows
            .iter()
            .map(|r| {
                if node {
                    r.outcomes[idx].node_utility
                } else {
                    r.outcomes[idx].path_utility
                }
            })
            .collect();
        cdf.mean()
    };
    println!("# paper: oldMORE prunes many nodes/paths; OMNC and MORE do not.");
    println!(
        "# measured mean node utility: OMNC {:.2}  MORE {:.2}  oldMORE {:.2}",
        mean(0, true),
        mean(1, true),
        mean(2, true)
    );
    println!(
        "# measured mean path utility: OMNC {:.2}  MORE {:.2}  oldMORE {:.2}",
        mean(0, false),
        mean(1, false),
        mean(2, false)
    );
}
