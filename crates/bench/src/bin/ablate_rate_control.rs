//! **Ablation**: how much of OMNC's throughput comes from the *optimized*
//! rates? Compares the distributed rate-control allocation against
//! (a) the exact LP optimum, (b) a naive uniform split of the capacity
//! among selected transmitters, and (c) MORE (no rate control at all).
//!
//! ```sh
//! cargo run --release -p omnc-bench --bin ablate_rate_control
//! ```

use omnc::metrics::Cdf;
use omnc::runner::{run_omnc_with_rates, run_session, Protocol};
use omnc_bench::Options;
use serde::Serialize;

/// One JSONL line per (rate source, session).
#[derive(Serialize)]
struct RateSourceRecord {
    rate_source: String,
    session: u64,
    throughput: f64,
}

fn main() {
    let opts = Options::from_args();
    let sink = opts.json_sink();
    let scenario = opts.scenario();
    let topology = scenario.build_topology();

    let mut optimized = Vec::new();
    let mut lp_exact = Vec::new();
    let mut uniform = Vec::new();
    let mut no_control = Vec::new();
    for (k, seed) in scenario.session_seeds().enumerate() {
        let (_, src, dst) = scenario.build_session(k as u64);
        let o = run_session(&topology, src, dst, Protocol::Omnc, &scenario.session, seed);
        optimized.push(o.throughput);

        let l = run_omnc_with_rates(&topology, src, dst, &scenario.session, seed, |p| {
            omnc::omnc_opt::lp::solve_exact(p)
                .expect("selection instances are solvable")
                .b
        });
        lp_exact.push(l.throughput);

        let u = run_omnc_with_rates(&topology, src, dst, &scenario.session, seed, |p| {
            // Uniform: every node gets capacity / (1 + max neighborhood
            // size) — feasible but blind.
            let worst = (0..p.node_count())
                .map(|i| p.neighbors(i).len() + 1)
                .max()
                .unwrap_or(1);
            vec![p.capacity() / worst as f64; p.node_count()]
        });
        uniform.push(u.throughput);

        let m = run_session(&topology, src, dst, Protocol::More, &scenario.session, seed);
        no_control.push(m.throughput);

        if let Some(sink) = &sink {
            for (rate_source, throughput) in [
                ("distributed", o.throughput),
                ("lp_exact", l.throughput),
                ("uniform", u.throughput),
                ("no_control", m.throughput),
            ] {
                sink.emit(&RateSourceRecord {
                    rate_source: rate_source.to_string(),
                    session: k as u64,
                    throughput,
                })
                .expect("JSONL export failed");
            }
        }
    }

    println!(
        "# Ablation: rate sources for the OMNC protocol ({} sessions)",
        optimized.len()
    );
    for (name, v) in [
        ("distributed rate control (OMNC)", &optimized),
        ("exact LP rates", &lp_exact),
        ("uniform feasible rates", &uniform),
        ("no rate control (MORE heuristic)", &no_control),
    ] {
        let cdf = Cdf::new(v.clone());
        println!(
            "{name:<36} mean {:>9.0} B/s   median {:>9.0} B/s",
            cdf.mean(),
            cdf.median()
        );
    }
}
