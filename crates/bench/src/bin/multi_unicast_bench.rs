//! **Extension experiment**: the multiple-unicast case from the paper's
//! conclusion. For pairs of crossing sessions on shared meshes, compares
//! (a) each session's solo optimum, (b) the coupled joint optimum, and
//! (c) the shared-price distributed solver.
//!
//! ```sh
//! cargo run --release -p omnc-bench --bin multi_unicast_bench
//! ```

use omnc::net_topo::deploy::Deployment;
use omnc::net_topo::phy::Phy;
use omnc::net_topo::select::select_forwarders;
use omnc::omnc_opt::municast::MUnicast;
use omnc::omnc_opt::{lp, RateControlParams, SUnicast};
use omnc_bench::Options;
use serde::Serialize;

/// One JSONL line per mesh.
#[derive(Serialize)]
struct MeshRecord {
    mesh: usize,
    solo_a: f64,
    solo_b: f64,
    joint_lp: f64,
    distributed: f64,
    ratio: f64,
}

fn main() {
    let opts = Options::from_args();
    let sink = opts.json_sink();
    let phy = Phy::paper_lossy();
    let deployments = 6usize;
    println!(
        "# Multiple unicast: 2 crossing sessions per mesh, {deployments} meshes (seed {})",
        opts.seed
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "mesh", "solo A", "solo B", "joint LP", "distributed", "dist/LP"
    );

    let mut ratio_sum = 0.0;
    let mut count = 0usize;
    for mesh in 0..deployments {
        let topology = Deployment::random(40, 6.0, &phy, opts.seed + mesh as u64).into_topology();
        let (a, b) = topology.farthest_pair();
        let sels = vec![
            select_forwarders(&topology, a, b),
            select_forwarders(&topology, b, a),
        ];
        let solo: Vec<f64> = sels
            .iter()
            .map(|sel| {
                lp::solve_exact(&SUnicast::from_selection(&topology, sel, 1e5))
                    .expect("solvable")
                    .gamma
            })
            .collect();
        let mu = MUnicast::from_selections(&topology, &sels, 1e5);
        let Ok(joint) = mu.solve_exact() else {
            println!("{mesh:>6}  (joint LP numerically unstable; skipped)");
            continue;
        };
        let params = RateControlParams {
            max_iterations: 400,
            ..Default::default()
        };
        let dist = mu.solve_distributed(&params);
        let ratio = dist.total() / joint.total();
        ratio_sum += ratio;
        count += 1;
        if let Some(sink) = &sink {
            sink.emit(&MeshRecord {
                mesh,
                solo_a: solo[0],
                solo_b: solo[1],
                joint_lp: joint.total(),
                distributed: dist.total(),
                ratio,
            })
            .expect("JSONL export failed");
        }
        println!(
            "{mesh:>6} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>9.2}",
            solo[0],
            solo[1],
            joint.total(),
            dist.total(),
            ratio
        );
    }
    if count > 0 {
        println!();
        println!("# sharing halves each session (joint < solo A + solo B); the shared-price");
        println!(
            "# distributed solver reaches {:.0}% of the joint optimum on average",
            100.0 * ratio_sum / count as f64
        );
    }
}
