//! **Figure 3**: CDF of per-node time-averaged queue size in the lossy
//! network.
//!
//! The paper reports that OMNC's rate control keeps the per-node
//! time-averaged queue below 1 for most sessions (overall average 0.63)
//! while congestion-oblivious MORE averages 22.
//!
//! ```sh
//! cargo run --release -p omnc-bench --bin fig3_queue
//! ```

use omnc::metrics::{render_cdf, Cdf};
use omnc::runner::Protocol;
use omnc_bench::{export_rows, print_reference, run_sweep, Options};

fn main() {
    let opts = Options::from_args();
    let scenario = opts.scenario();
    let rows = run_sweep(&scenario, &[Protocol::Omnc, Protocol::More], &opts.logger());
    if let Some(sink) = opts.json_sink() {
        export_rows(&sink, &rows);
    }

    // Per-session mean of the per-node time-averaged queue sizes.
    let omnc: Cdf = rows.iter().map(|r| r.outcomes[0].mean_queue()).collect();
    let more: Cdf = rows.iter().map(|r| r.outcomes[1].mean_queue()).collect();

    println!(
        "# Fig. 3 — time-averaged queue size per session, {} sessions",
        rows.len()
    );
    println!("{}", render_cdf("OMNC queue size", &omnc, 12));
    println!("{}", render_cdf("MORE queue size", &more, 12));

    print_reference("overall mean queue, OMNC", 0.63, omnc.mean());
    print_reference("overall mean queue, MORE", 22.0, more.mean());
    let below_one = omnc.at(1.0);
    println!(
        "paper: OMNC per-node queue < 1 for most sessions — measured: {:.0}% of sessions",
        below_one * 100.0
    );
}
