//! **Figure 2**: CDF of throughput gain over ETX routing.
//!
//! Left plot (lossy network, avg link quality ≈ 0.58): the paper reports
//! mean gains OMNC 2.45, MORE 1.67, oldMORE 1.12. Right plot (high link
//! quality ≈ 0.91, `--quality high`): OMNC 1.12 while MORE and oldMORE
//! drop below 1. Also reports the Sec. 5 convergence-iterations claim
//! (average ≈ 91).
//!
//! ```sh
//! cargo run --release -p omnc-bench --bin fig2_gain -- --quality lossy
//! cargo run --release -p omnc-bench --bin fig2_gain -- --quality high
//! cargo run --release -p omnc-bench --bin fig2_gain -- --full   # paper scale
//! ```

use omnc::metrics::render_cdf;
use omnc::runner::Protocol;
use omnc::scenario::Quality;
use omnc_bench::{export_rows, gain_cdf, print_reference, run_sweep_traced, Options};

fn main() {
    let opts = Options::from_args();
    let scenario = opts.scenario();
    let protocols = [
        Protocol::EtxRouting,
        Protocol::Omnc,
        Protocol::More,
        Protocol::OldMore,
    ];
    let rows = run_sweep_traced(&scenario, &protocols, opts.trace.as_deref(), &opts.logger());
    if let Some(sink) = opts.json_sink() {
        export_rows(&sink, &rows);
    }

    println!(
        "# Fig. 2 ({}) — throughput gain over ETX routing, {} sessions",
        match opts.quality {
            Quality::Lossy => "left: lossy network",
            Quality::High => "right: high link quality",
        },
        rows.len()
    );
    let omnc = gain_cdf(&rows, 1, 0);
    let more = gain_cdf(&rows, 2, 0);
    let old = gain_cdf(&rows, 3, 0);
    println!("{}", render_cdf("OMNC gain", &omnc, 12));
    println!("{}", render_cdf("MORE gain", &more, 12));
    println!("{}", render_cdf("oldMORE gain", &old, 12));

    match opts.quality {
        Quality::Lossy => {
            print_reference("mean gain, OMNC (lossy)", 2.45, omnc.mean());
            print_reference("mean gain, MORE (lossy)", 1.67, more.mean());
            print_reference("mean gain, oldMORE (lossy)", 1.12, old.mean());
        }
        Quality::High => {
            print_reference("mean gain, OMNC (high quality)", 1.12, omnc.mean());
            println!(
                "paper: MORE and oldMORE fall below 1.0 — measured MORE {:.2}, oldMORE {:.2}",
                more.mean(),
                old.mean()
            );
        }
    }

    // Sec. 5: "The average number of iterations required for the
    // experiments in Fig. 2 is 91."
    let iters: Vec<f64> = rows
        .iter()
        .filter_map(|r| r.outcomes[1].rc_iterations)
        .map(|i| i as f64)
        .collect();
    if !iters.is_empty() {
        let mean = iters.iter().sum::<f64>() / iters.len() as f64;
        print_reference("mean rate-control iterations", 91.0, mean);
    }
}
