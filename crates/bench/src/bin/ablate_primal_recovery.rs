//! **Ablation**: primal recovery strategies. The paper recovers primal
//! solutions by ergodic averaging (eqs. (13)/(18), after Sherali-Choi);
//! this bench compares the recovery candidates against using the raw last
//! iterate, as optimality ratio vs the exact LP.
//!
//! ```sh
//! cargo run --release -p omnc-bench --bin ablate_primal_recovery
//! ```

use omnc::net_topo::select::select_forwarders;
use omnc::omnc_opt::{lp, RateControl, RateControlParams, Recovery, SUnicast};
use omnc_bench::Options;
use serde::Serialize;

/// One JSONL line per (recovery mode, session).
#[derive(Serialize)]
struct RecoveryRecord {
    recovery: String,
    session: u64,
    optimality_ratio: f64,
}

fn main() {
    let opts = Options::from_args();
    let sink = opts.json_sink();
    let mut scenario = opts.scenario();
    scenario.sessions = scenario.sessions.min(12);
    let topology = scenario.build_topology();

    let modes = [
        ("best of candidates", Recovery::Best),
        ("averaged b (eq. 18)", Recovery::AveragedB),
        ("flow-derived (eq. 13)", Recovery::FlowDerived),
        ("last iterate (no recovery)", Recovery::LastIterate),
    ];

    println!(
        "# Ablation: primal recovery, {} sessions",
        scenario.sessions
    );
    println!("{:<28} {:>12}", "recovery", "opt. ratio");
    for (name, recovery) in modes {
        let mut ratios = Vec::new();
        for k in 0..scenario.sessions as u64 {
            let (_, src, dst) = scenario.build_session(k);
            let sel = select_forwarders(&topology, src, dst);
            let problem = SUnicast::from_selection(&topology, &sel, scenario.session.capacity);
            let exact = lp::solve_exact(&problem).expect("solvable");
            let params = RateControlParams {
                recovery,
                ..Default::default()
            };
            let alloc = RateControl::with_params(&problem, params).run();
            let ratio = alloc.throughput() / exact.gamma;
            if let Some(sink) = &sink {
                sink.emit(&RecoveryRecord {
                    recovery: name.to_string(),
                    session: k,
                    optimality_ratio: ratio,
                })
                .expect("JSONL export failed");
            }
            ratios.push(ratio);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!("{name:<28} {mean:>11.3}");
    }
    println!("# paper: primal recovery is required for a primal-optimal point;");
    println!("# the raw subgradient iterate is not primal feasible/optimal.");
}
