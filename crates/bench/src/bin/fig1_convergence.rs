//! **Figure 1**: convergence of the distributed rate-control algorithm.
//!
//! The paper plots per-node broadcast rate against iteration count on a
//! sample topology with tagged link probabilities, channel capacity 1e5
//! bytes/second and step size `A = 1, B = 0.5, C = 10`, observing
//! convergence "within a few rounds of iterations".
//!
//! ```sh
//! cargo run --release -p omnc-bench --bin fig1_convergence
//! cargo run --release -p omnc-bench --bin fig1_convergence -- --json results/fig1.json
//! ```
//!
//! With `--json <path>`, every iteration's subgradient telemetry (step
//! size, dual value, max constraint violation, recovered rate) is written
//! as one JSON object per line.

use omnc::net_topo::graph::{Link, NodeId, Topology};
use omnc::net_topo::select::select_forwarders;
use omnc::omnc_opt::{lp, RateControl, RateControlParams, SUnicast, StepSize};
use omnc_bench::Options;

fn main() {
    let opts = Options::from_args();
    // A sample multi-path topology with tagged reception probabilities.
    let capacity = 1e5;
    let links = vec![
        Link {
            from: NodeId::new(0),
            to: NodeId::new(1),
            p: 0.8,
        },
        Link {
            from: NodeId::new(0),
            to: NodeId::new(2),
            p: 0.5,
        },
        Link {
            from: NodeId::new(1),
            to: NodeId::new(3),
            p: 0.6,
        },
        Link {
            from: NodeId::new(2),
            to: NodeId::new(3),
            p: 0.9,
        },
        Link {
            from: NodeId::new(1),
            to: NodeId::new(2),
            p: 0.7,
        },
    ];
    let topology = Topology::from_links(4, links).expect("valid sample topology");
    let selection = select_forwarders(&topology, NodeId::new(0), NodeId::new(3));
    let problem = SUnicast::from_selection(&topology, &selection, capacity);

    let params = RateControlParams {
        step: StepSize::Diminishing {
            a: 1.0,
            b: 0.5,
            c: 10.0,
        }, // the Fig. 1 schedule
        max_iterations: 60,
        tolerance: 1e-12, // run the full horizon for the plot
        ..Default::default()
    };
    let (alloc, trace) = RateControl::with_params(&problem, params)
        .with_trace()
        .run_traced();
    let exact = lp::solve_exact(&problem).expect("solvable sample");

    if let Some(sink) = opts.json_sink() {
        for record in &trace.records {
            sink.emit(record).expect("JSONL export failed");
        }
        sink.flush().expect("JSONL flush failed");
        opts.logger().info(&format!(
            "wrote {} iteration records to {}",
            trace.records.len(),
            opts.json.as_deref().unwrap_or("")
        ));
    }

    println!("# Fig. 1 — deployable broadcast rate (bytes/second) vs iteration");
    println!("# capacity = {capacity:.0} B/s, step A=1 B=0.5 C=10");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "iter", "source", "relay1", "relay2"
    );
    for (t, b) in trace.b_allocated.iter().enumerate() {
        if t % 2 == 0 || t + 1 == trace.b_recovered.len() {
            let bi = |orig: usize| {
                problem
                    .local_index(NodeId::new(orig))
                    .map(|i| b[i])
                    .unwrap_or(0.0)
            };
            println!(
                "{:>6} {:>12.0} {:>12.0} {:>12.0}",
                t + 1,
                bi(0),
                bi(1),
                bi(2)
            );
        }
    }
    println!();
    println!("# paper: rates converge to the optimal solution within a few tens");
    println!("# of iterations (Fig. 1 shows ~40). measured:");
    // Find the first iteration after which every recovered rate stays
    // within 5% of its final value.
    let last = trace.b_allocated.last().expect("non-empty trace");
    let settled = (0..trace.b_allocated.len())
        .find(|&t| {
            trace.b_allocated[t..].iter().all(|b| {
                b.iter()
                    .zip(last)
                    .all(|(a, z)| (a - z).abs() <= 0.05 * z.max(capacity * 0.01))
            })
        })
        .map(|t| t + 1)
        .unwrap_or(trace.b_allocated.len());
    println!("#   settled within 5% of the final rates after iteration {settled}");
    println!(
        "#   recovered throughput {:.0} B/s vs exact LP optimum {:.0} B/s ({:.1}%)",
        alloc.throughput(),
        exact.gamma,
        100.0 * alloc.throughput() / exact.gamma
    );
}
