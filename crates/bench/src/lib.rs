//! Shared harness for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index) and prints the paper's reference
//! numbers next to the measured ones. The default scale is reduced so the
//! whole suite runs in minutes; `--full` (or `OMNC_FULL=1`) restores the
//! paper's 300-node / 300-session / 800-second scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::File;
use std::io::{BufWriter, Write};

use omnc::metrics::Cdf;
use omnc::runner::{run_cell_on, Protocol, RunOptions, SessionOutcome};
use omnc::scenario::{Quality, Scenario};
use serde::{Deserialize, Serialize};
use telemetry::{EventSink, LogLevel, Logger};

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct Options {
    /// Paper-scale run (300 nodes, 300 sessions, 800 s).
    pub full: bool,
    /// Override the number of sessions.
    pub sessions: Option<usize>,
    /// Override the number of deployed nodes.
    pub nodes: Option<usize>,
    /// Link-quality regime.
    pub quality: Quality,
    /// Master seed.
    pub seed: u64,
    /// Destination for machine-readable JSONL results (`--json <path>`).
    pub json: Option<String>,
    /// Destination for the causal packet-lifecycle trace
    /// (`--trace <path>`; feed the file to `omnc-report analyze`).
    pub trace: Option<String>,
    /// Stderr verbosity (`--log-level {quiet,info,debug}`).
    pub log_level: LogLevel,
}

impl Options {
    /// Parses `std::env::args` (ignores unknown flags so binaries can add
    /// their own on top).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Options::from_slice(&args)
    }

    /// Parses an explicit argument slice (testable).
    pub fn from_slice(args: &[String]) -> Self {
        let mut opts = Options {
            full: std::env::var("OMNC_FULL")
                .map(|v| v == "1")
                .unwrap_or(false),
            sessions: None,
            nodes: None,
            quality: Quality::Lossy,
            seed: 2008,
            json: None,
            trace: None,
            log_level: LogLevel::default(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--sessions" => {
                    opts.sessions = it.next().and_then(|v| v.parse().ok());
                }
                "--nodes" => {
                    opts.nodes = it.next().and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        opts.seed = v;
                    }
                }
                "--json" => {
                    opts.json = it.next().cloned();
                }
                "--trace" => {
                    opts.trace = it.next().cloned();
                }
                "--quality" => match it.next().map(String::as_str) {
                    Some("high") => opts.quality = Quality::High,
                    Some("lossy") => opts.quality = Quality::Lossy,
                    _ => {}
                },
                "--log-level" => {
                    if let Some(level) = it.next().and_then(|v| LogLevel::parse(v)) {
                        opts.log_level = level;
                    }
                }
                _ => {}
            }
        }
        opts
    }

    /// The JSONL sink selected by `--json`, or `None` when text-only.
    ///
    /// # Panics
    ///
    /// Panics if the file (or its parent directory) cannot be created.
    pub fn json_sink(&self) -> Option<EventSink> {
        self.json.as_ref().map(|path| {
            EventSink::to_file(path).unwrap_or_else(|e| panic!("cannot open --json {path}: {e}"))
        })
    }

    /// The stderr logger these options select.
    #[must_use]
    pub fn logger(&self) -> Logger {
        Logger::new(self.log_level)
    }

    /// The scenario these options select.
    pub fn scenario(&self) -> Scenario {
        let mut s = if self.full {
            Scenario::paper(self.quality)
        } else {
            Scenario::reduced(self.quality)
        };
        if let Some(n) = self.sessions {
            s.sessions = n;
        }
        if let Some(n) = self.nodes {
            s.nodes = n;
        }
        s.seed = self.seed;
        s
    }
}

impl Default for Options {
    fn default() -> Self {
        Options::from_slice(&[])
    }
}

/// Result of one session across all requested protocols.
pub struct SessionRow {
    /// Session index.
    pub k: u64,
    /// Outcomes in the order of `protocols` passed to [`run_sweep`].
    pub outcomes: Vec<SessionOutcome>,
}

/// The JSONL record the sweep binaries export: one measured outcome tagged
/// with its session index (the protocol is inside the outcome).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Session index within the sweep.
    pub session: u64,
    /// Everything measured from this run.
    pub outcome: SessionOutcome,
}

/// Exports every outcome of a sweep as one [`SessionRecord`] line.
///
/// # Panics
///
/// Panics on I/O errors — results files are the whole point of the run.
pub fn export_rows(sink: &EventSink, rows: &[SessionRow]) {
    for row in rows {
        for outcome in &row.outcomes {
            sink.emit(&SessionRecord {
                session: row.k,
                outcome: outcome.clone(),
            })
            .expect("JSONL export failed");
        }
    }
    sink.flush().expect("JSONL flush failed");
}

/// Runs `protocols` over every session of the scenario, logging progress
/// at `info`. The topology is built once; sessions differ in endpoints
/// and seeds.
pub fn run_sweep(scenario: &Scenario, protocols: &[Protocol], log: &Logger) -> Vec<SessionRow> {
    run_sweep_traced(scenario, protocols, None, log)
}

/// Like [`run_sweep`], additionally appending every session's causal
/// packet-lifecycle trace to `trace_path` as JSONL (one
/// `SessionStart ..= SessionEnd` stream per session per protocol, ready for
/// `omnc-report analyze`).
///
/// # Panics
///
/// Panics if the trace file cannot be created or written — results files
/// are the whole point of the run.
pub fn run_sweep_traced(
    scenario: &Scenario,
    protocols: &[Protocol],
    trace_path: Option<&str>,
    log: &Logger,
) -> Vec<SessionRow> {
    let topology = scenario.build_topology();
    log.info(&format!(
        "topology: {} nodes, {} links, avg quality {:.3}; {} sessions x {:?}",
        topology.len(),
        topology.link_count(),
        topology.avg_link_quality(),
        scenario.sessions,
        protocols.iter().map(|p| p.name()).collect::<Vec<_>>()
    ));
    let mut trace_out = trace_path.map(|path| {
        BufWriter::new(
            File::create(path).unwrap_or_else(|e| panic!("cannot create --trace {path}: {e}")),
        )
    });
    let options = RunOptions {
        fault: None,
        trace_capacity: trace_out.is_some().then_some(200_000),
        ..RunOptions::default()
    };
    let mut rows = Vec::new();
    for k in 0..scenario.sessions as u64 {
        let outcomes: Vec<SessionOutcome> = protocols
            .iter()
            .map(|&p| {
                let (out, trace) = run_cell_on(&topology, scenario, p, k, &options);
                if let (Some(w), Some(trace)) = (trace_out.as_mut(), trace) {
                    trace.write_jsonl(&mut *w).expect("trace export failed");
                }
                out
            })
            .collect();
        rows.push(SessionRow { k, outcomes });
        if (k + 1) % 10 == 0 {
            log.info(&format!("{}/{} sessions done", k + 1, scenario.sessions));
        }
    }
    if let Some(mut w) = trace_out {
        w.flush().expect("trace flush failed");
    }
    rows
}

/// Extracts the throughput-gain CDF of `idx` (vs the ETX outcome at
/// `etx_idx`) from sweep rows, skipping sessions where ETX delivered zero.
pub fn gain_cdf(rows: &[SessionRow], idx: usize, etx_idx: usize) -> Cdf {
    rows.iter()
        .filter(|r| r.outcomes[etx_idx].throughput > 0.0)
        .map(|r| r.outcomes[idx].throughput / r.outcomes[etx_idx].throughput)
        .collect()
}

/// Pretty-prints a two-column comparison of paper vs measured values.
pub fn print_reference(label: &str, paper: f64, measured: f64) {
    let status = if paper > 0.0 {
        format!("{:+.0}%", 100.0 * (measured - paper) / paper)
    } else {
        String::from("n/a")
    };
    println!("{label:<42} paper {paper:>8.2}   measured {measured:>8.2}   ({status})");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_reduced_lossy() {
        let o = Options::from_slice(&[]);
        assert!(!o.full || std::env::var("OMNC_FULL").is_ok());
        assert_eq!(o.quality, Quality::Lossy);
        assert_eq!(o.scenario().nodes, Scenario::reduced(Quality::Lossy).nodes);
    }

    #[test]
    fn flags_are_parsed() {
        let o = Options::from_slice(&strs(&[
            "--full",
            "--sessions",
            "7",
            "--quality",
            "high",
            "--seed",
            "99",
        ]));
        assert!(o.full);
        assert_eq!(o.sessions, Some(7));
        assert_eq!(o.quality, Quality::High);
        assert_eq!(o.seed, 99);
        let s = o.scenario();
        assert_eq!(s.sessions, 7);
        assert_eq!(s.nodes, 300);
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let o = Options::from_slice(&strs(&["--whatever", "--sessions", "3"]));
        assert_eq!(o.sessions, Some(3));
    }

    #[test]
    fn json_flag_selects_a_sink() {
        let o = Options::from_slice(&strs(&["--json", "results/out.jsonl"]));
        assert_eq!(o.json.as_deref(), Some("results/out.jsonl"));
        assert!(Options::from_slice(&[]).json_sink().is_none());
    }

    #[test]
    fn tiny_sweep_produces_rows() {
        let mut scenario = Scenario::small_test();
        scenario.sessions = 2;
        scenario.session.payload_block_size = 1;
        let rows = run_sweep(
            &scenario,
            &[Protocol::EtxRouting, Protocol::Omnc],
            &Logger::new(LogLevel::Quiet),
        );
        assert_eq!(rows.len(), 2);
        let gains = gain_cdf(&rows, 1, 0);
        assert!(gains.len() <= 2);

        // The exported JSONL round-trips back into SessionRecords.
        let sink = EventSink::in_memory();
        export_rows(&sink, &rows);
        let lines = sink.lines();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let back: SessionRecord = serde_json::from_str(line).expect("valid JSONL");
            assert!(back.session < 2);
            assert!(back.outcome.throughput >= 0.0);
        }
    }

    #[test]
    fn traced_sweep_exports_one_stream_per_run() {
        let mut scenario = Scenario::small_test();
        scenario.sessions = 2;
        scenario.session.payload_block_size = 1;
        let path = std::env::temp_dir().join("bench_traced_sweep.jsonl");
        let path = path.to_str().unwrap().to_string();
        let rows = run_sweep_traced(
            &scenario,
            &[Protocol::EtxRouting, Protocol::Omnc],
            Some(&path),
            &Logger::new(LogLevel::Quiet),
        );
        assert_eq!(rows.len(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let starts = text.lines().filter(|l| l.contains("SessionStart")).count();
        let ends = text.lines().filter(|l| l.contains("SessionEnd")).count();
        // One stream per session per protocol.
        assert_eq!(starts, 4);
        assert_eq!(ends, 4);
    }

    #[test]
    fn fig1_iteration_records_round_trip_through_jsonl() {
        use omnc::net_topo::graph::{Link, NodeId, Topology};
        use omnc::net_topo::select::select_forwarders;
        use omnc::omnc_opt::{IterationRecord, RateControl, RateControlParams, SUnicast};

        // The Fig. 1 sample topology, at a short horizon.
        let links = vec![
            Link {
                from: NodeId::new(0),
                to: NodeId::new(1),
                p: 0.8,
            },
            Link {
                from: NodeId::new(0),
                to: NodeId::new(2),
                p: 0.5,
            },
            Link {
                from: NodeId::new(1),
                to: NodeId::new(3),
                p: 0.6,
            },
            Link {
                from: NodeId::new(2),
                to: NodeId::new(3),
                p: 0.9,
            },
        ];
        let topology = Topology::from_links(4, links).unwrap();
        let selection = select_forwarders(&topology, NodeId::new(0), NodeId::new(3));
        let problem = SUnicast::from_selection(&topology, &selection, 1e5);
        let params = RateControlParams {
            max_iterations: 20,
            tolerance: 1e-12,
            ..Default::default()
        };
        let (_, trace) = RateControl::with_params(&problem, params)
            .with_trace()
            .run_traced();
        assert!(!trace.records.is_empty());

        let sink = EventSink::in_memory();
        for r in &trace.records {
            sink.emit(r).unwrap();
        }
        for (line, orig) in sink.lines().iter().zip(&trace.records) {
            let back: IterationRecord = serde_json::from_str(line).expect("schema parses");
            assert_eq!(&back, orig);
            assert!(back.step_size > 0.0);
            assert!(back.dual_value.is_finite());
            assert!(back.max_violation >= 0.0);
        }
    }
}
