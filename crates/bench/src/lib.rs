//! Shared harness for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index) and prints the paper's reference
//! numbers next to the measured ones. The default scale is reduced so the
//! whole suite runs in minutes; `--full` (or `OMNC_FULL=1`) restores the
//! paper's 300-node / 300-session / 800-second scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use omnc::metrics::Cdf;
use omnc::runner::{run_session, Protocol, SessionOutcome};
use omnc::scenario::{Quality, Scenario};

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct Options {
    /// Paper-scale run (300 nodes, 300 sessions, 800 s).
    pub full: bool,
    /// Override the number of sessions.
    pub sessions: Option<usize>,
    /// Override the number of deployed nodes.
    pub nodes: Option<usize>,
    /// Link-quality regime.
    pub quality: Quality,
    /// Master seed.
    pub seed: u64,
}

impl Options {
    /// Parses `std::env::args` (ignores unknown flags so binaries can add
    /// their own on top).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Options::from_slice(&args)
    }

    /// Parses an explicit argument slice (testable).
    pub fn from_slice(args: &[String]) -> Self {
        let mut opts = Options {
            full: std::env::var("OMNC_FULL").map(|v| v == "1").unwrap_or(false),
            sessions: None,
            nodes: None,
            quality: Quality::Lossy,
            seed: 2008,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--sessions" => {
                    opts.sessions = it.next().and_then(|v| v.parse().ok());
                }
                "--nodes" => {
                    opts.nodes = it.next().and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        opts.seed = v;
                    }
                }
                "--quality" => match it.next().map(String::as_str) {
                    Some("high") => opts.quality = Quality::High,
                    Some("lossy") => opts.quality = Quality::Lossy,
                    _ => {}
                },
                _ => {}
            }
        }
        opts
    }

    /// The scenario these options select.
    pub fn scenario(&self) -> Scenario {
        let mut s = if self.full {
            Scenario::paper(self.quality)
        } else {
            Scenario::reduced(self.quality)
        };
        if let Some(n) = self.sessions {
            s.sessions = n;
        }
        if let Some(n) = self.nodes {
            s.nodes = n;
        }
        s.seed = self.seed;
        s
    }
}

impl Default for Options {
    fn default() -> Self {
        Options::from_slice(&[])
    }
}

/// Result of one session across all requested protocols.
pub struct SessionRow {
    /// Session index.
    pub k: u64,
    /// Outcomes in the order of `protocols` passed to [`run_sweep`].
    pub outcomes: Vec<SessionOutcome>,
}

/// Runs `protocols` over every session of the scenario, printing progress.
/// The topology is built once; sessions differ in endpoints and seeds.
pub fn run_sweep(scenario: &Scenario, protocols: &[Protocol]) -> Vec<SessionRow> {
    let topology = scenario.build_topology();
    eprintln!(
        "# topology: {} nodes, {} links, avg quality {:.3}; {} sessions x {:?}",
        topology.len(),
        topology.link_count(),
        topology.avg_link_quality(),
        scenario.sessions,
        protocols.iter().map(|p| p.name()).collect::<Vec<_>>()
    );
    let mut rows = Vec::new();
    for (k, seed) in scenario.session_seeds().enumerate() {
        let (_, src, dst) = scenario.build_session(k as u64);
        let outcomes: Vec<SessionOutcome> = protocols
            .iter()
            .map(|&p| run_session(&topology, src, dst, p, &scenario.session, seed))
            .collect();
        rows.push(SessionRow { k: k as u64, outcomes });
        if (k + 1) % 10 == 0 {
            eprintln!("#   {}/{} sessions done", k + 1, scenario.sessions);
        }
    }
    rows
}

/// Extracts the throughput-gain CDF of `idx` (vs the ETX outcome at
/// `etx_idx`) from sweep rows, skipping sessions where ETX delivered zero.
pub fn gain_cdf(rows: &[SessionRow], idx: usize, etx_idx: usize) -> Cdf {
    rows.iter()
        .filter(|r| r.outcomes[etx_idx].throughput > 0.0)
        .map(|r| r.outcomes[idx].throughput / r.outcomes[etx_idx].throughput)
        .collect()
}

/// Pretty-prints a two-column comparison of paper vs measured values.
pub fn print_reference(label: &str, paper: f64, measured: f64) {
    let status = if paper > 0.0 {
        format!("{:+.0}%", 100.0 * (measured - paper) / paper)
    } else {
        String::from("n/a")
    };
    println!("{label:<42} paper {paper:>8.2}   measured {measured:>8.2}   ({status})");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_reduced_lossy() {
        let o = Options::from_slice(&[]);
        assert!(!o.full || std::env::var("OMNC_FULL").is_ok());
        assert_eq!(o.quality, Quality::Lossy);
        assert_eq!(o.scenario().nodes, Scenario::reduced(Quality::Lossy).nodes);
    }

    #[test]
    fn flags_are_parsed() {
        let o = Options::from_slice(&strs(&[
            "--full",
            "--sessions",
            "7",
            "--quality",
            "high",
            "--seed",
            "99",
        ]));
        assert!(o.full);
        assert_eq!(o.sessions, Some(7));
        assert_eq!(o.quality, Quality::High);
        assert_eq!(o.seed, 99);
        let s = o.scenario();
        assert_eq!(s.sessions, 7);
        assert_eq!(s.nodes, 300);
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let o = Options::from_slice(&strs(&["--whatever", "--sessions", "3"]));
        assert_eq!(o.sessions, Some(3));
    }

    #[test]
    fn tiny_sweep_produces_rows() {
        let mut scenario = Scenario::small_test();
        scenario.sessions = 2;
        scenario.session.payload_block_size = 1;
        let rows = run_sweep(&scenario, &[Protocol::EtxRouting, Protocol::Omnc]);
        assert_eq!(rows.len(), 2);
        let gains = gain_cdf(&rows, 1, 0);
        assert!(gains.len() <= 2);
    }
}
