//! Wireless topology substrate for the OMNC reproduction.
//!
//! This crate models everything the paper's evaluation needs below the
//! protocol layer:
//!
//! * [`geom`] — planar geometry for node placement.
//! * [`phy`] — the empirical PHY model mapping link distance to reception
//!   probability (substituting the Camp et al. measurement traces used by
//!   the paper's Drift testbed; see DESIGN.md for the calibration).
//! * [`graph`] — the lossy connectivity graph with per-link reception
//!   probabilities and interference neighborhoods.
//! * [`deploy`] — random deployments with controlled density (the paper's
//!   300-node, density-6 networks).
//! * [`etx`] / [`dijkstra`] — the expected-transmission-count metric of
//!   Couto et al. and shortest paths under it.
//! * [`select`] — the decentralized node-selection procedure that keeps only
//!   forwarders closer (in ETX) to the destination, producing the paper's
//!   topology graph `G(V, E)`.
//! * [`probe`] — link-quality measurement by probing, as ETX prescribes.
//!
//! # Examples
//!
//! ```
//! use omnc_net_topo::{deploy::Deployment, phy::Phy, select::select_forwarders};
//!
//! let phy = Phy::paper_lossy();
//! let net = Deployment::random(60, 6.0, &phy, 42).into_topology();
//! // Pick a source/destination pair and build the forwarder subgraph.
//! let sel = select_forwarders(&net, net.farthest_pair().0, net.farthest_pair().1);
//! assert!(sel.nodes().len() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deploy;
pub mod dijkstra;
pub mod etx;
pub mod geom;
pub mod graph;
pub mod phy;
pub mod probe;
pub mod select;
pub mod topologies;

mod error;

pub use error::TopoError;
pub use graph::{Link, NodeId, Topology};
