//! Link-quality measurement by probe broadcasting.
//!
//! ETX (and therefore OMNC's node selection) measures the reception
//! probability `p_ij` "by broadcasting probing packets, and taking the ratio
//! of correctly received packets over the number that are sent" (Sec. 4).
//! This module simulates that measurement over the true Bernoulli channel,
//! giving the rest of the stack *estimated* link qualities with realistic
//! sampling noise.

use rand::Rng;

use crate::graph::{Link, Topology};

/// Result of probing all links of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReport {
    probes_per_link: u32,
    measured: Vec<Link>,
}

impl ProbeReport {
    /// Number of probes each transmitter broadcast.
    pub fn probes_per_link(&self) -> u32 {
        self.probes_per_link
    }

    /// The measured links (links whose every probe was lost are dropped,
    /// exactly as an implementation would never learn they exist).
    pub fn links(&self) -> &[Link] {
        &self.measured
    }

    /// Builds the *measured* topology from the estimates.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::TopoError`] if the measured graph is degenerate
    /// (e.g. all probes lost everywhere).
    pub fn into_topology(self, n: usize) -> Result<Topology, crate::TopoError> {
        Topology::from_links(n, self.measured)
    }

    /// Mean absolute estimation error against the true topology.
    pub fn mean_abs_error(&self, truth: &Topology) -> f64 {
        if self.measured.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .measured
            .iter()
            .map(|l| (l.p - truth.link_prob(l.from, l.to).unwrap_or(0.0)).abs())
            .sum();
        sum / self.measured.len() as f64
    }
}

/// Probes every link of `truth` with `probes` broadcast packets per
/// transmitter and returns the estimated link set.
///
/// # Panics
///
/// Panics if `probes` is zero.
pub fn probe_links<R: Rng + ?Sized>(truth: &Topology, probes: u32, rng: &mut R) -> ProbeReport {
    assert!(probes > 0, "at least one probe is required");
    let mut measured = Vec::new();
    for i in truth.nodes() {
        // One broadcast reaches all receivers independently; simulate the
        // per-receiver Bernoulli trials.
        let mut received = vec![0u32; truth.out_links(i).len()];
        for _ in 0..probes {
            for (slot, link) in truth.out_links(i).iter().enumerate() {
                if rng.gen_bool(link.p) {
                    received[slot] += 1;
                }
            }
        }
        for (slot, link) in truth.out_links(i).iter().enumerate() {
            if received[slot] > 0 {
                measured.push(Link {
                    from: i,
                    to: link.to,
                    p: f64::from(received[slot]) / f64::from(probes),
                });
            }
        }
    }
    ProbeReport {
        probes_per_link: probes,
        measured,
    }
}

/// Convenience: probe and rebuild the measured topology in one call,
/// falling back to the true link set if measurement lost a link entirely.
pub fn measured_topology<R: Rng + ?Sized>(truth: &Topology, probes: u32, rng: &mut R) -> Topology {
    let report = probe_links(truth, probes, rng);
    report
        .into_topology(truth.len())
        .unwrap_or_else(|_| truth.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;
    use rand::SeedableRng;

    fn truth() -> Topology {
        Topology::from_links(
            3,
            vec![
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(1),
                    p: 0.7,
                },
                Link {
                    from: NodeId::new(1),
                    to: NodeId::new(2),
                    p: 0.3,
                },
                Link {
                    from: NodeId::new(2),
                    to: NodeId::new(0),
                    p: 1.0,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn estimates_converge_with_many_probes() {
        let t = truth();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let report = probe_links(&t, 10_000, &mut rng);
        assert!(
            report.mean_abs_error(&t) < 0.02,
            "err {}",
            report.mean_abs_error(&t)
        );
    }

    #[test]
    fn few_probes_are_noisy_but_bounded() {
        let t = truth();
        let mut rng = rand::rngs::StdRng::seed_from_u64(18);
        let report = probe_links(&t, 10, &mut rng);
        for l in report.links() {
            assert!((0.0..=1.0).contains(&l.p));
            assert!(l.p > 0.0, "zero-probability links must be dropped");
        }
    }

    #[test]
    fn perfect_links_measure_perfect() {
        let t = Topology::from_links(
            2,
            vec![Link {
                from: NodeId::new(0),
                to: NodeId::new(1),
                p: 1.0,
            }],
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let report = probe_links(&t, 50, &mut rng);
        assert_eq!(report.links()[0].p, 1.0);
        assert_eq!(report.probes_per_link(), 50);
    }

    #[test]
    fn measured_topology_is_usable() {
        let t = truth();
        let mut rng = rand::rngs::StdRng::seed_from_u64(20);
        let m = measured_topology(&t, 1000, &mut rng);
        assert_eq!(m.len(), 3);
        assert!(m.link_prob(NodeId::new(0), NodeId::new(1)).is_some());
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn zero_probes_panics() {
        let t = truth();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = probe_links(&t, 0, &mut rng);
    }
}
