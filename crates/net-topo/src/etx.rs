//! The expected transmission count (ETX) metric of Couto et al. (MobiCom'03),
//! used by the paper both as the baseline routing metric and inside OMNC's
//! node selection (Sec. 4).

use crate::dijkstra::{self, ShortestPaths};
use crate::graph::{Link, NodeId, Topology};
use crate::TopoError;

/// ETX cost of one link: the expected number of transmissions to deliver a
/// packet over it, `1 / p_ij` (Sec. 4).
pub fn link_cost(link: &Link) -> f64 {
    1.0 / link.p
}

/// ETX distance of every node *to* `dst`, computed by running Dijkstra from
/// `dst` over reversed links. This is the "distance to the destination" each
/// node computes during node selection.
pub fn distances_to(topology: &Topology, dst: NodeId) -> Vec<Option<f64>> {
    // Dijkstra over the reverse graph == distances to dst in the forward one.
    let reversed = reverse(topology);
    let sp = dijkstra::shortest_paths(&reversed, dst, link_cost);
    topology.nodes().map(|v| sp.cost(v)).collect()
}

/// The ETX-shortest path from `src` to `dst` (the route that the paper's
/// "ETX routing" baseline uses).
///
/// # Errors
///
/// Returns [`TopoError::Disconnected`] if no path exists.
pub fn best_path(topology: &Topology, src: NodeId, dst: NodeId) -> Result<Vec<NodeId>, TopoError> {
    let sp: ShortestPaths = dijkstra::shortest_paths(topology, src, link_cost);
    sp.path_to(dst).ok_or(TopoError::Disconnected { src, dst })
}

/// Total ETX cost of a node path (sum of link ETX values).
///
/// # Errors
///
/// Returns [`TopoError::Disconnected`] if any consecutive pair is not linked.
pub fn path_cost(topology: &Topology, path: &[NodeId]) -> Result<f64, TopoError> {
    let mut cost = 0.0;
    for w in path.windows(2) {
        let p = topology
            .link_prob(w[0], w[1])
            .ok_or(TopoError::Disconnected {
                src: w[0],
                dst: w[1],
            })?;
        cost += 1.0 / p;
    }
    Ok(cost)
}

fn reverse(topology: &Topology) -> Topology {
    let links = topology
        .links()
        .map(|l| Link {
            from: l.to,
            to: l.from,
            p: l.p,
        })
        .collect();
    Topology::from_links(topology.len(), links).expect("reversing preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asymmetric() -> Topology {
        // 0 → 1 → 2 with a poor direct link 0 → 2; reverse links differ.
        Topology::from_links(
            3,
            vec![
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(1),
                    p: 1.0,
                },
                Link {
                    from: NodeId::new(1),
                    to: NodeId::new(2),
                    p: 0.5,
                },
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(2),
                    p: 0.25,
                },
                Link {
                    from: NodeId::new(2),
                    to: NodeId::new(0),
                    p: 1.0,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn link_cost_is_reciprocal_probability() {
        let l = Link {
            from: NodeId::new(0),
            to: NodeId::new(1),
            p: 0.25,
        };
        assert_eq!(link_cost(&l), 4.0);
        assert_eq!(l.etx(), 4.0);
    }

    #[test]
    fn best_path_prefers_low_total_etx() {
        let t = asymmetric();
        // via node 1: 1 + 2 = 3 < direct: 4.
        let path = best_path(&t, NodeId::new(0), NodeId::new(2)).unwrap();
        assert_eq!(path, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        assert_eq!(path_cost(&t, &path).unwrap(), 3.0);
    }

    #[test]
    fn distances_respect_link_direction() {
        let t = asymmetric();
        let d = distances_to(&t, NodeId::new(2));
        assert_eq!(d[2], Some(0.0));
        assert_eq!(d[0], Some(3.0));
        assert_eq!(d[1], Some(2.0));
        // To node 1 only node 0 has a path.
        let d1 = distances_to(&t, NodeId::new(1));
        assert_eq!(d1[0], Some(1.0));
        assert_eq!(d1[2], Some(2.0)); // 2 → 0 → 1
    }

    #[test]
    fn disconnected_pairs_error() {
        let t = Topology::from_links(
            2,
            vec![Link {
                from: NodeId::new(0),
                to: NodeId::new(1),
                p: 1.0,
            }],
        )
        .unwrap();
        assert!(matches!(
            best_path(&t, NodeId::new(1), NodeId::new(0)),
            Err(TopoError::Disconnected { .. })
        ));
        assert!(path_cost(&t, &[NodeId::new(1), NodeId::new(0)]).is_err());
    }
}
