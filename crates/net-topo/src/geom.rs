//! Planar geometry for node placement.

use serde::{Deserialize, Serialize};

/// A point in the deployment plane (units are arbitrary; only ratios to the
/// transmission range matter).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    ///
    /// ```
    /// # use omnc_net_topo::geom::Point;
    /// assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
    /// ```
    pub fn distance(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-0.5, 4.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn triangle_inequality() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(5.0, 1.0);
        let c = Point::new(2.0, 7.0);
        assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-12);
    }

    #[test]
    fn tuple_conversion() {
        assert_eq!(Point::from((1.0, 2.0)), Point::new(1.0, 2.0));
    }
}
