//! Error type for topology construction and queries.

use core::fmt;

use crate::graph::NodeId;

/// Errors from topology construction and path queries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopoError {
    /// A deployment or graph was requested with fewer than two nodes.
    TooFewNodes {
        /// Nodes requested.
        requested: usize,
    },
    /// A parameter that must be positive and finite was not.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The supplied value.
        value: f64,
    },
    /// A node id does not exist in the topology.
    UnknownNode(NodeId),
    /// No path exists between the requested pair.
    Disconnected {
        /// Source of the failed query.
        src: NodeId,
        /// Destination of the failed query.
        dst: NodeId,
    },
    /// A link probability outside `(0, 1]` was supplied.
    InvalidProbability {
        /// The supplied probability.
        p: f64,
    },
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::TooFewNodes { requested } => {
                write!(f, "a topology needs at least 2 nodes, got {requested}")
            }
            TopoError::InvalidParameter { name, value } => {
                write!(
                    f,
                    "parameter {name} must be positive and finite, got {value}"
                )
            }
            TopoError::UnknownNode(id) => write!(f, "unknown node {id}"),
            TopoError::Disconnected { src, dst } => {
                write!(f, "no path from {src} to {dst}")
            }
            TopoError::InvalidProbability { p } => {
                write!(f, "link probability must be in (0, 1], got {p}")
            }
        }
    }
}

impl std::error::Error for TopoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let e = TopoError::Disconnected {
            src: NodeId::new(1),
            dst: NodeId::new(2),
        };
        assert!(e.to_string().contains("n1"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopoError>();
    }
}
