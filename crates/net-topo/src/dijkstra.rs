//! Dijkstra shortest paths with pluggable link costs.
//!
//! Used twice by the reproduction: with the ETX cost during node selection
//! (Sec. 4) and with the Lagrange-multiplier cost `λ_ij` inside subproblem
//! SUB1 of the rate-control algorithm (Sec. 3.3).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{Link, NodeId, Topology};

/// Shortest-path tree from a single source.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    prev: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// The source the tree was grown from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Cost from the source to `node`, or `None` if unreachable.
    pub fn cost(&self, node: NodeId) -> Option<f64> {
        let d = self.dist[node.index()];
        d.is_finite().then_some(d)
    }

    /// The predecessor of `node` on its shortest path, if any.
    pub fn predecessor(&self, node: NodeId) -> Option<NodeId> {
        self.prev[node.index()]
    }

    /// Reconstructs the node sequence from the source to `dst`, inclusive.
    /// Returns `None` if `dst` is unreachable.
    pub fn path_to(&self, dst: NodeId) -> Option<Vec<NodeId>> {
        self.cost(dst)?;
        let mut path = vec![dst];
        let mut cur = dst;
        while let Some(p) = self.prev[cur.index()] {
            path.push(p);
            cur = p;
        }
        if cur != self.source {
            return None;
        }
        path.reverse();
        Some(path)
    }

    /// Number of hops (links) on the shortest path to `dst`.
    pub fn hops_to(&self, dst: NodeId) -> Option<usize> {
        self.path_to(dst).map(|p| p.len() - 1)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; costs are finite by construction.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("link costs must not be NaN")
            .then_with(|| other.node.index().cmp(&self.node.index()))
    }
}

/// Runs Dijkstra from `source` using `cost(link)` as the (non-negative) link
/// weight.
///
/// # Panics
///
/// Panics if `cost` returns a negative or NaN weight.
///
/// # Examples
///
/// ```
/// use omnc_net_topo::{dijkstra, etx, graph::{Link, NodeId, Topology}};
///
/// let t = Topology::from_links(3, vec![
///     Link { from: NodeId::new(0), to: NodeId::new(1), p: 0.5 },
///     Link { from: NodeId::new(1), to: NodeId::new(2), p: 0.5 },
///     Link { from: NodeId::new(0), to: NodeId::new(2), p: 0.2 },
/// ])?;
/// let sp = dijkstra::shortest_paths(&t, NodeId::new(0), etx::link_cost);
/// // Two hops at ETX 2 each beat one hop at ETX 5.
/// assert_eq!(sp.cost(NodeId::new(2)), Some(4.0));
/// assert_eq!(sp.path_to(NodeId::new(2)).unwrap().len(), 3);
/// # Ok::<(), omnc_net_topo::TopoError>(())
/// ```
pub fn shortest_paths<F>(topology: &Topology, source: NodeId, cost: F) -> ShortestPaths
where
    F: Fn(&Link) -> f64,
{
    let n = topology.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });

    while let Some(HeapEntry { cost: d, node: u }) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for link in topology.out_links(u) {
            let w = cost(link);
            assert!(w >= 0.0, "negative or NaN link cost");
            let next = d + w;
            if next < dist[link.to.index()] {
                dist[link.to.index()] = next;
                prev[link.to.index()] = Some(u);
                heap.push(HeapEntry {
                    cost: next,
                    node: link.to,
                });
            }
        }
    }
    ShortestPaths { source, dist, prev }
}

/// All-pairs shortest-path costs by repeated Dijkstra. Quadratic memory;
/// intended for tests and small reference computations.
pub fn all_pairs<F>(topology: &Topology, cost: F) -> Vec<Vec<Option<f64>>>
where
    F: Fn(&Link) -> f64 + Copy,
{
    topology
        .nodes()
        .map(|s| {
            let sp = shortest_paths(topology, s, cost);
            topology.nodes().map(|d| sp.cost(d)).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etx;

    fn line(n: usize, p: f64) -> Topology {
        let mut links = Vec::new();
        for i in 0..n - 1 {
            links.push(Link {
                from: NodeId::new(i),
                to: NodeId::new(i + 1),
                p,
            });
            links.push(Link {
                from: NodeId::new(i + 1),
                to: NodeId::new(i),
                p,
            });
        }
        Topology::from_links(n, links).unwrap()
    }

    #[test]
    fn line_costs_accumulate() {
        let t = line(5, 0.5);
        let sp = shortest_paths(&t, NodeId::new(0), etx::link_cost);
        for i in 0..5 {
            assert_eq!(sp.cost(NodeId::new(i)), Some(2.0 * i as f64));
        }
        assert_eq!(sp.hops_to(NodeId::new(4)), Some(4));
    }

    #[test]
    fn unreachable_nodes_have_no_cost() {
        let t = Topology::from_links(
            3,
            vec![Link {
                from: NodeId::new(0),
                to: NodeId::new(1),
                p: 1.0,
            }],
        )
        .unwrap();
        let sp = shortest_paths(&t, NodeId::new(0), etx::link_cost);
        assert_eq!(sp.cost(NodeId::new(2)), None);
        assert_eq!(sp.path_to(NodeId::new(2)), None);
    }

    #[test]
    fn path_reconstruction_follows_predecessors() {
        let t = line(4, 1.0);
        let sp = shortest_paths(&t, NodeId::new(0), etx::link_cost);
        assert_eq!(
            sp.path_to(NodeId::new(3)).unwrap(),
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
        assert_eq!(sp.predecessor(NodeId::new(3)), Some(NodeId::new(2)));
        assert_eq!(sp.predecessor(NodeId::new(0)), None);
    }

    #[test]
    fn matches_floyd_warshall_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let n = 8;
            let mut links = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if i != j && rng.gen_bool(0.4) {
                        links.push(Link {
                            from: NodeId::new(i),
                            to: NodeId::new(j),
                            p: rng.gen_range(0.1..=1.0),
                        });
                    }
                }
            }
            if links.is_empty() {
                continue;
            }
            let t = Topology::from_links(n, links).unwrap();

            // Floyd–Warshall reference.
            let mut fw = vec![vec![f64::INFINITY; n]; n];
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                fw[i][i] = 0.0;
            }
            for l in t.links() {
                let w = etx::link_cost(&l);
                if w < fw[l.from.index()][l.to.index()] {
                    fw[l.from.index()][l.to.index()] = w;
                }
            }
            for k in 0..n {
                for i in 0..n {
                    for j in 0..n {
                        let via = fw[i][k] + fw[k][j];
                        if via < fw[i][j] {
                            fw[i][j] = via;
                        }
                    }
                }
            }

            let ap = all_pairs(&t, etx::link_cost);
            for i in 0..n {
                for j in 0..n {
                    match ap[i][j] {
                        Some(d) => assert!((d - fw[i][j]).abs() < 1e-9, "{i}->{j}"),
                        None => assert!(fw[i][j].is_infinite(), "{i}->{j}"),
                    }
                }
            }
        }
    }

    #[test]
    fn custom_costs_are_respected() {
        // Hop count: every link costs 1.
        let t = line(4, 0.25);
        let sp = shortest_paths(&t, NodeId::new(0), |_| 1.0);
        assert_eq!(sp.cost(NodeId::new(3)), Some(3.0));
    }
}
