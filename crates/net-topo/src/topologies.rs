//! Canonical hand-made topologies: lines, rings, grids, cliques and the
//! diamond that recurs throughout the OMNC paper's discussion. Useful for
//! tests, benches and worked examples where a deployment's randomness would
//! get in the way.

use crate::graph::{Link, NodeId, Topology};

/// A bidirectional chain `0 — 1 — … — n-1` with uniform link probability.
///
/// # Panics
///
/// Panics if `n < 2` or `p` is outside `(0, 1]`.
///
/// # Examples
///
/// ```
/// use omnc_net_topo::topologies;
///
/// let t = topologies::line(5, 0.7);
/// assert_eq!(t.len(), 5);
/// assert_eq!(t.link_count(), 8); // 4 hops, both directions
/// ```
pub fn line(n: usize, p: f64) -> Topology {
    assert!(n >= 2, "a line needs at least 2 nodes");
    let mut links = Vec::with_capacity(2 * (n - 1));
    for i in 0..n - 1 {
        links.push(Link {
            from: NodeId::new(i),
            to: NodeId::new(i + 1),
            p,
        });
        links.push(Link {
            from: NodeId::new(i + 1),
            to: NodeId::new(i),
            p,
        });
    }
    Topology::from_links(n, links).expect("line parameters validated")
}

/// A bidirectional ring of `n` nodes with uniform link probability.
///
/// # Panics
///
/// Panics if `n < 3` or `p` is outside `(0, 1]`.
pub fn ring(n: usize, p: f64) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut links = Vec::with_capacity(2 * n);
    for i in 0..n {
        let j = (i + 1) % n;
        links.push(Link {
            from: NodeId::new(i),
            to: NodeId::new(j),
            p,
        });
        links.push(Link {
            from: NodeId::new(j),
            to: NodeId::new(i),
            p,
        });
    }
    Topology::from_links(n, links).expect("ring parameters validated")
}

/// A `rows × cols` 4-connected grid with uniform link probability. Node
/// `(r, c)` has index `r * cols + c`.
///
/// # Panics
///
/// Panics if either dimension is zero or the grid has fewer than 2 nodes.
pub fn grid(rows: usize, cols: usize, p: f64) -> Topology {
    assert!(rows * cols >= 2, "a grid needs at least 2 nodes");
    let id = |r: usize, c: usize| NodeId::new(r * cols + c);
    let mut links = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                links.push(Link {
                    from: id(r, c),
                    to: id(r, c + 1),
                    p,
                });
                links.push(Link {
                    from: id(r, c + 1),
                    to: id(r, c),
                    p,
                });
            }
            if r + 1 < rows {
                links.push(Link {
                    from: id(r, c),
                    to: id(r + 1, c),
                    p,
                });
                links.push(Link {
                    from: id(r + 1, c),
                    to: id(r, c),
                    p,
                });
            }
        }
    }
    Topology::from_links(rows * cols, links).expect("grid parameters validated")
}

/// A complete graph on `n` nodes with uniform link probability.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn clique(n: usize, p: f64) -> Topology {
    assert!(n >= 2, "a clique needs at least 2 nodes");
    let mut links = Vec::with_capacity(n * (n - 1));
    for i in 0..n {
        for j in 0..n {
            if i != j {
                links.push(Link {
                    from: NodeId::new(i),
                    to: NodeId::new(j),
                    p,
                });
            }
        }
    }
    Topology::from_links(n, links).expect("clique parameters validated")
}

/// The two-relay diamond of the paper's Sec. 3.2 discussion:
/// `0 → {1, 2} → 3`, with per-link probabilities
/// `(p_s1, p_s2, p_1t, p_2t)`. Directed (forward) links only.
///
/// # Panics
///
/// Panics if any probability is outside `(0, 1]`.
pub fn diamond(p_s1: f64, p_s2: f64, p_1t: f64, p_2t: f64) -> Topology {
    Topology::from_links(
        4,
        vec![
            Link {
                from: NodeId::new(0),
                to: NodeId::new(1),
                p: p_s1,
            },
            Link {
                from: NodeId::new(0),
                to: NodeId::new(2),
                p: p_s2,
            },
            Link {
                from: NodeId::new(1),
                to: NodeId::new(3),
                p: p_1t,
            },
            Link {
                from: NodeId::new(2),
                to: NodeId::new(3),
                p: p_2t,
            },
        ],
    )
    .expect("diamond parameters validated")
}

/// `k` parallel bidirectional chains of `hops` hops each, sharing only the
/// endpoints — the spatially-uncoupled multipath structure where OMNC's
/// diversity advantage is cleanest. Node 0 is the source, node 1 the
/// destination; chain `c`'s relays are `2 + c·(hops-1) ..`.
///
/// # Panics
///
/// Panics if `k == 0`, `hops < 2`, or `p` is outside `(0, 1]`.
pub fn parallel_chains(k: usize, hops: usize, p: f64) -> Topology {
    assert!(k >= 1, "at least one chain");
    assert!(hops >= 2, "chains need at least 2 hops");
    let relays_per = hops - 1;
    let n = 2 + k * relays_per;
    let (src, dst) = (NodeId::new(0), NodeId::new(1));
    let mut links = Vec::new();
    let mut both = |a: NodeId, b: NodeId| {
        links.push(Link { from: a, to: b, p });
        links.push(Link { from: b, to: a, p });
    };
    for c in 0..k {
        let base = 2 + c * relays_per;
        both(src, NodeId::new(base));
        for r in 0..relays_per - 1 {
            both(NodeId::new(base + r), NodeId::new(base + r + 1));
        }
        both(NodeId::new(base + relays_per - 1), dst);
    }
    Topology::from_links(n, links).expect("chain parameters validated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::etx;

    #[test]
    fn line_structure() {
        let t = line(6, 0.5);
        assert!(t.is_connected());
        let sp = dijkstra::shortest_paths(&t, NodeId::new(0), etx::link_cost);
        assert_eq!(sp.hops_to(NodeId::new(5)), Some(5));
    }

    #[test]
    fn ring_has_two_ways_around() {
        let t = ring(6, 0.9);
        assert_eq!(t.link_count(), 12);
        let sp = dijkstra::shortest_paths(&t, NodeId::new(0), etx::link_cost);
        // Opposite node is 3 hops either way.
        assert_eq!(sp.hops_to(NodeId::new(3)), Some(3));
    }

    #[test]
    fn grid_degrees() {
        let t = grid(3, 4, 0.5);
        assert_eq!(t.len(), 12);
        // Corner has 2 neighbors, center has 4.
        assert_eq!(t.neighbors(NodeId::new(0)).len(), 2);
        assert_eq!(t.neighbors(NodeId::new(5)).len(), 4);
        assert!(t.is_connected());
    }

    #[test]
    fn clique_is_fully_linked() {
        let t = clique(5, 0.3);
        assert_eq!(t.link_count(), 20);
        for v in t.nodes() {
            assert_eq!(t.neighbors(v).len(), 4);
        }
    }

    #[test]
    fn diamond_matches_the_papers_shape() {
        let t = diamond(0.8, 0.5, 0.6, 0.9);
        assert_eq!(t.link_prob(NodeId::new(0), NodeId::new(1)), Some(0.8));
        assert_eq!(t.link_prob(NodeId::new(2), NodeId::new(3)), Some(0.9));
        assert_eq!(t.link_prob(NodeId::new(1), NodeId::new(2)), None);
    }

    #[test]
    fn parallel_chains_share_only_endpoints() {
        let t = parallel_chains(3, 4, 0.6);
        assert_eq!(t.len(), 2 + 3 * 3);
        // Relays of different chains are not linked.
        assert_eq!(t.link_prob(NodeId::new(2), NodeId::new(5)), None);
        // Every chain connects src to dst in `hops` hops.
        let sp = dijkstra::shortest_paths(&t, NodeId::new(0), |_| 1.0);
        assert_eq!(sp.hops_to(NodeId::new(1)), Some(4));
        use crate::select::{disjoint_path_count, select_forwarders};
        let sel = select_forwarders(&t, NodeId::new(0), NodeId::new(1));
        assert_eq!(
            disjoint_path_count(sel.subgraph(), NodeId::new(0), NodeId::new(1)),
            3
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn tiny_line_panics() {
        let _ = line(1, 0.5);
    }
}
