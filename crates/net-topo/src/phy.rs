//! Empirical PHY model: link distance → one-way reception probability.
//!
//! The paper's Drift testbed uses a PHY model derived from the real-world
//! urban-mesh traces of Camp et al. (MobiSys'06) that "empirically maps link
//! distance to the reception probability" (Sec. 5). We do not have those
//! traces, so this module substitutes a parametric curve with the same
//! qualitative shape — a high plateau near the transmitter followed by a
//! smooth fall-off — calibrated to reproduce the paper's two operating
//! points on density-6 random deployments:
//!
//! * **lossy** (default power): average link reception probability ≈ 0.58,
//!   with most links of intermediate quality;
//! * **high quality** (increased transmission power): average ≈ 0.91.
//!
//! Following Sec. 3.2, the *transmission range* is the distance at which the
//! reception probability falls below a small threshold (0.2), and the
//! interference range is identical to it. Beyond the range the probability
//! is truncated to zero.
//!
//! Real measurements additionally show large variance of reception
//! probability at a fixed distance (shadowing); the model reproduces it
//! with a per-link log-normal factor on the effective distance
//! ([`Phy::with_shadowing`]), so that some nearby links are surprisingly
//! bad and some long links surprisingly usable — the raw material of
//! opportunistic routing.

use serde::{Deserialize, Serialize};

use crate::TopoError;

/// Reception probability threshold that defines the transmission range
/// (Sec. 5: "defined as the distance where reception probability is 0.2").
pub const RANGE_THRESHOLD: f64 = 0.2;

/// Residual reception probability of an in-range link whose shadowing draw
/// pushed it below the threshold (see [`Phy::reception_prob_shadowed`]).
pub const SHADOWED_FLOOR: f64 = 0.08;

/// Opportunistic reception extends to this multiple of the nominal range:
/// beyond the range the probability decays from [`RANGE_THRESHOLD`] to zero
/// (the paper defines the *range* as where p falls below the threshold —
/// reception does not stop there, only interference accounting does).
pub const OPPORTUNISTIC_CUTOFF: f64 = 2.0;

/// Parametric distance → reception-probability model.
///
/// # Examples
///
/// ```
/// use omnc_net_topo::phy::Phy;
///
/// let phy = Phy::paper_lossy();
/// assert!(phy.reception_prob(0.0) > 0.9);                 // near field
/// assert!((phy.reception_prob(phy.range()) - 0.2).abs() < 1e-9);
/// // Beyond the range, opportunistic reception decays to zero at 2R.
/// assert!(phy.reception_prob(phy.range() * 1.2) < 0.2);
/// assert_eq!(phy.reception_prob(phy.range() * 2.1), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phy {
    nominal_range: f64,
    p_max: f64,
    plateau_frac: f64,
    power_gain: f64,
    shadowing_sigma: f64,
    opportunistic_cutoff: f64,
}

impl Phy {
    /// The lossy operating point of the paper's evaluation (Fig. 2 left):
    /// intermediate link qualities, average reception probability ≈ 0.58.
    pub fn paper_lossy() -> Self {
        Phy {
            nominal_range: 100.0,
            p_max: 0.94,
            plateau_frac: 0.42,
            power_gain: 1.0,
            shadowing_sigma: 0.35,
            opportunistic_cutoff: OPPORTUNISTIC_CUTOFF,
        }
    }

    /// The high-link-quality operating point (Fig. 2 right): every node's
    /// transmission power increased so the average reception probability on
    /// the *same* links rises to ≈ 0.91.
    pub fn paper_high_quality() -> Self {
        Phy::paper_lossy().with_power_gain(2.0)
    }

    /// Builds a custom model.
    ///
    /// `nominal_range` is the distance where the probability crosses
    /// [`RANGE_THRESHOLD`] at unit power gain; `p_max` is the plateau
    /// probability near the transmitter; `plateau_frac` the fraction of the
    /// nominal range covered by the plateau.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::InvalidParameter`] for non-finite or
    /// out-of-range values (`p_max` must lie in `(RANGE_THRESHOLD, 1]`,
    /// `plateau_frac` in `[0, 1)`).
    pub fn new(nominal_range: f64, p_max: f64, plateau_frac: f64) -> Result<Self, TopoError> {
        if !(nominal_range.is_finite() && nominal_range > 0.0) {
            return Err(TopoError::InvalidParameter {
                name: "nominal_range",
                value: nominal_range,
            });
        }
        if !(p_max.is_finite() && p_max > RANGE_THRESHOLD && p_max <= 1.0) {
            return Err(TopoError::InvalidParameter {
                name: "p_max",
                value: p_max,
            });
        }
        if !(plateau_frac.is_finite() && (0.0..1.0).contains(&plateau_frac)) {
            return Err(TopoError::InvalidParameter {
                name: "plateau_frac",
                value: plateau_frac,
            });
        }
        Ok(Phy {
            nominal_range,
            p_max,
            plateau_frac,
            power_gain: 1.0,
            shadowing_sigma: 0.0,
            opportunistic_cutoff: OPPORTUNISTIC_CUTOFF,
        })
    }

    /// Returns the same model with transmission power scaled so that all
    /// distances are effectively divided by `gain` (> 1 boosts quality).
    ///
    /// The *range* (and hence the neighbor/interference sets) is kept at the
    /// nominal value: the paper's high-power experiment raises link
    /// qualities on the same topology rather than adding longer links.
    #[must_use]
    pub fn with_power_gain(mut self, gain: f64) -> Self {
        assert!(
            gain.is_finite() && gain > 0.0,
            "power gain must be positive"
        );
        self.power_gain = gain;
        self
    }

    /// The transmission range (== interference range): the distance at which
    /// reception probability crosses [`RANGE_THRESHOLD`] at unit gain.
    pub fn range(&self) -> f64 {
        self.nominal_range
    }

    /// The power gain applied to this model.
    pub fn power_gain(&self) -> f64 {
        self.power_gain
    }

    /// Returns the same model with log-normal shadowing of the given sigma:
    /// each link's effective distance is multiplied by `exp(sigma · z)` for
    /// a per-link standard normal `z` (drawn by the topology builder).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    #[must_use]
    pub fn with_shadowing(mut self, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "shadowing sigma must be non-negative"
        );
        self.shadowing_sigma = sigma;
        self
    }

    /// The shadowing sigma of this model.
    pub fn shadowing_sigma(&self) -> f64 {
        self.shadowing_sigma
    }

    /// Returns the same model with the opportunistic-reception cutoff set to
    /// `multiple` × range. `1.0` truncates reception at the range (the
    /// strictest reading of the paper's threshold definition); the default
    /// [`OPPORTUNISTIC_CUTOFF`] lets low-probability reception continue to
    /// twice the range, as measured deployments do.
    ///
    /// # Panics
    ///
    /// Panics if `multiple < 1.0` or is not finite.
    #[must_use]
    pub fn with_opportunistic_cutoff(mut self, multiple: f64) -> Self {
        assert!(
            multiple.is_finite() && multiple >= 1.0,
            "cutoff must be >= 1 range"
        );
        self.opportunistic_cutoff = multiple;
        self
    }

    /// The opportunistic-reception cutoff as a multiple of the range.
    pub fn opportunistic_cutoff(&self) -> f64 {
        self.opportunistic_cutoff
    }

    /// One-way reception probability of a link of length `distance`.
    ///
    /// Zero beyond [`Phy::range`]; within range the curve is a plateau at
    /// `p_max` followed by a smoothstep decay that reaches
    /// [`RANGE_THRESHOLD`] at the nominal range (for unit power gain).
    pub fn reception_prob(&self, distance: f64) -> f64 {
        self.reception_prob_shadowed(distance, 0.0)
    }

    /// Reception probability with an explicit shadowing draw `z` (standard
    /// normal): the effective distance becomes `distance · exp(sigma · z)`.
    /// Links whose shadowed distance exceeds the range are blocked even if
    /// geometrically close.
    ///
    /// Power gain divides the effective distance *and* lifts the plateau
    /// probability to `1 − (1 − p_max) / gain` (more power improves the SNR
    /// on short links too).
    ///
    /// # Panics
    ///
    /// Panics if `distance` is negative or `z` is not finite.
    pub fn reception_prob_shadowed(&self, distance: f64, z: f64) -> f64 {
        assert!(
            distance.is_finite() && distance >= 0.0,
            "distance must be non-negative"
        );
        assert!(z.is_finite(), "shadowing draw must be finite");
        if distance > self.opportunistic_cutoff * self.nominal_range {
            return 0.0; // beyond even opportunistic reception
        }
        let shadowed = distance * (self.shadowing_sigma * z).exp();
        let effective = shadowed / self.power_gain;
        let p_max = 1.0 - (1.0 - self.p_max) / self.power_gain;
        let plateau_end = self.plateau_frac * self.nominal_range;
        let raw = if effective > self.opportunistic_cutoff * self.nominal_range {
            0.0 // shadowed into the noise floor
        } else if effective > self.nominal_range {
            // Opportunistic tail: the threshold probability decays to zero
            // at the cutoff. Interference accounting stops at the range;
            // reception does not.
            let span = (self.opportunistic_cutoff - 1.0).max(1e-12);
            let t = ((effective / self.nominal_range - 1.0) / span).min(1.0);
            RANGE_THRESHOLD * (1.0 - t * t * (3.0 - 2.0 * t))
        } else if effective <= plateau_end {
            p_max
        } else {
            let span = self.nominal_range - plateau_end;
            let t = ((effective - plateau_end) / span).clamp(0.0, 1.0);
            let s = t * t * (3.0 - 2.0 * t); // smoothstep
            p_max - (p_max - RANGE_THRESHOLD) * s
        };
        if distance <= self.nominal_range {
            // Shadowing degrades but never kills a geometrically in-range
            // link: a small residual probability keeps the in-range link set
            // identical across power levels and preserves connectivity.
            raw.max(SHADOWED_FLOOR)
        } else {
            raw
        }
    }

    /// Numerically computes the expected link reception probability over
    /// links whose endpoints are uniformly random within range of each other
    /// (distance density `2u du` on `[0, range]`, ignoring border effects).
    /// Used to verify the calibration against the paper's quoted averages.
    pub fn expected_link_quality(&self) -> f64 {
        let steps = 2_000;
        let z_steps = 41;
        let mut num = 0.0;
        let mut den = 0.0;
        for k in 0..steps {
            let u = (k as f64 + 0.5) / steps as f64;
            let w = 2.0 * u;
            if self.shadowing_sigma == 0.0 {
                num += w * self.reception_prob(u * self.nominal_range);
                den += w;
            } else {
                // Gauss-ish quadrature over the shadowing draw.
                for j in 0..z_steps {
                    let z = -3.0 + 6.0 * j as f64 / (z_steps - 1) as f64;
                    let pdf = (-0.5 * z * z).exp();
                    num += w * pdf * self.reception_prob_shadowed(u * self.nominal_range, z);
                    den += w * pdf;
                }
            }
        }
        num / den
    }
}

impl Default for Phy {
    fn default() -> Self {
        Phy::paper_lossy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_is_monotone_nonincreasing_within_range() {
        let phy = Phy::paper_lossy();
        let mut prev = 1.0;
        for k in 0..=1000 {
            let d = phy.range() * k as f64 / 1000.0;
            let p = phy.reception_prob(d);
            assert!(p <= prev + 1e-12, "not monotone at d={d}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn range_is_the_threshold_crossing() {
        let phy = Phy::paper_lossy();
        assert!((phy.reception_prob(phy.range()) - RANGE_THRESHOLD).abs() < 1e-9);
        // Beyond the range: opportunistic tail below the threshold, zero at
        // the cutoff.
        let tail = phy.reception_prob(phy.range() * 1.5);
        assert!(tail > 0.0 && tail < RANGE_THRESHOLD, "tail p {tail}");
        assert_eq!(
            phy.reception_prob(phy.range() * OPPORTUNISTIC_CUTOFF + 1.0),
            0.0
        );
    }

    #[test]
    fn lossy_calibration_matches_paper_average() {
        // Paper, Sec. 5: "average reception probability is 0.58".
        let q = Phy::paper_lossy().expected_link_quality();
        assert!((0.54..=0.62).contains(&q), "expected ~0.58, got {q}");
    }

    #[test]
    fn high_quality_calibration_matches_paper_average() {
        // Paper, Sec. 5: power increased so that the average rises to 0.91.
        let q = Phy::paper_high_quality().expected_link_quality();
        assert!((0.87..=0.94).contains(&q), "expected ~0.91, got {q}");
    }

    #[test]
    fn power_gain_never_shrinks_probability() {
        let lossy = Phy::paper_lossy();
        let strong = Phy::paper_high_quality();
        for k in 0..=100 {
            let d = lossy.range() * k as f64 / 100.0;
            assert!(strong.reception_prob(d) >= lossy.reception_prob(d) - 1e-12);
        }
    }

    #[test]
    fn power_gain_keeps_the_topology() {
        // Same range ⇒ same neighbor sets, per the paper's experiment design.
        assert_eq!(
            Phy::paper_lossy().range(),
            Phy::paper_high_quality().range()
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Phy::new(0.0, 0.9, 0.3).is_err());
        assert!(Phy::new(100.0, 0.1, 0.3).is_err()); // p_max below threshold
        assert!(Phy::new(100.0, 1.5, 0.3).is_err());
        assert!(Phy::new(100.0, 0.9, 1.0).is_err());
        assert!(Phy::new(f64::NAN, 0.9, 0.3).is_err());
    }

    #[test]
    #[should_panic(expected = "power gain must be positive")]
    fn zero_gain_panics() {
        let _ = Phy::paper_lossy().with_power_gain(0.0);
    }
}
