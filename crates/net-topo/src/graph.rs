//! The lossy connectivity graph `G(V, E)` with per-link reception
//! probabilities and interference neighborhoods.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::geom::Point;
use crate::phy::Phy;
use crate::TopoError;

/// Identifier of a node in a [`Topology`] (a dense index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(usize);

impl NodeId {
    /// Wraps a raw index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

/// A directed lossy link with its one-way reception probability `p_ij`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Transmitting endpoint.
    pub from: NodeId,
    /// Receiving endpoint.
    pub to: NodeId,
    /// One-way reception probability in `(0, 1]`.
    pub p: f64,
}

impl Link {
    /// The ETX cost of this link, `1 / p` (Couto et al., used in Sec. 4).
    pub fn etx(&self) -> f64 {
        1.0 / self.p
    }
}

/// A wireless topology: node positions (optional), directed lossy links and
/// interference neighborhoods.
///
/// Interference follows the paper's model (Sec. 3.2): transmission range and
/// interference range coincide, so the interference neighborhood `N(i)` is
/// exactly the set of nodes adjacent to `i` (in either direction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    points: Option<Vec<Point>>,
    range: Option<f64>,
    n: usize,
    out: Vec<Vec<Link>>,
    inn: Vec<Vec<Link>>,
    neighbors: Vec<Vec<NodeId>>,
    prob: HashMap<(usize, usize), f64>,
}

impl Topology {
    /// Builds a topology from node positions and a PHY model: every ordered
    /// pair within [`Phy::range`] becomes a directed link with probability
    /// `phy.reception_prob(distance)`.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::TooFewNodes`] for fewer than two points.
    pub fn from_points(points: Vec<Point>, phy: &Phy) -> Result<Self, TopoError> {
        Topology::from_points_seeded(points, phy, None)
    }

    /// Like [`Topology::from_points`], but applies the PHY's per-link
    /// log-normal shadowing using draws derived deterministically from
    /// `seed` (the same unordered pair always gets the same draw, so both
    /// directions of a link and re-builds under a boosted PHY share it).
    /// With `None`, or a PHY without shadowing, this is the plain
    /// distance-deterministic construction.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::TooFewNodes`] for fewer than two points.
    pub fn from_points_seeded(
        points: Vec<Point>,
        phy: &Phy,
        seed: Option<u64>,
    ) -> Result<Self, TopoError> {
        if points.len() < 2 {
            return Err(TopoError::TooFewNodes {
                requested: points.len(),
            });
        }
        let n = points.len();
        let mut links = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = points[i].distance(points[j]);
                let p = match seed {
                    Some(s) if phy.shadowing_sigma() > 0.0 => {
                        phy.reception_prob_shadowed(d, pair_normal(s, i.min(j), i.max(j)))
                    }
                    _ => phy.reception_prob(d),
                };
                if p > 0.0 {
                    links.push(Link {
                        from: NodeId(i),
                        to: NodeId(j),
                        p,
                    });
                }
            }
        }
        let mut topo = Topology::assemble(n, links)?;
        // Interference neighborhoods are *geometric*: nodes within the
        // transmission/interference range R. Links may reach farther (the
        // opportunistic tail up to 2R) without creating interference
        // coupling — matching the paper's \"range = where p crosses the
        // threshold\" definition.
        let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in 0..n {
                if i != j && points[i].distance(points[j]) <= phy.range() {
                    neighbors[i].push(NodeId(j));
                }
            }
        }
        topo.neighbors = neighbors;
        topo.points = Some(points);
        topo.range = Some(phy.range());
        Ok(topo)
    }

    /// Builds a topology from an explicit link list (for hand-crafted test
    /// topologies such as the paper's Fig. 1 sample). The interference
    /// neighborhood of a node is the set of nodes it shares a link with.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::TooFewNodes`] for `n < 2`,
    /// [`TopoError::UnknownNode`] for out-of-range endpoints and
    /// [`TopoError::InvalidProbability`] for probabilities outside `(0, 1]`.
    pub fn from_links(n: usize, links: Vec<Link>) -> Result<Self, TopoError> {
        if n < 2 {
            return Err(TopoError::TooFewNodes { requested: n });
        }
        Topology::assemble(n, links)
    }

    fn assemble(n: usize, links: Vec<Link>) -> Result<Self, TopoError> {
        let mut out = vec![Vec::new(); n];
        let mut inn = vec![Vec::new(); n];
        let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut prob = HashMap::with_capacity(links.len());
        for link in links {
            if link.from.0 >= n {
                return Err(TopoError::UnknownNode(link.from));
            }
            if link.to.0 >= n {
                return Err(TopoError::UnknownNode(link.to));
            }
            if !(link.p.is_finite() && link.p > 0.0 && link.p <= 1.0) {
                return Err(TopoError::InvalidProbability { p: link.p });
            }
            prob.insert((link.from.0, link.to.0), link.p);
            out[link.from.0].push(link);
            inn[link.to.0].push(link);
            if !neighbors[link.from.0].contains(&link.to) {
                neighbors[link.from.0].push(link.to);
            }
            if !neighbors[link.to.0].contains(&link.from) {
                neighbors[link.to.0].push(link.from);
            }
        }
        for list in &mut neighbors {
            list.sort_unstable();
        }
        Ok(Topology {
            points: None,
            range: None,
            n,
            out,
            inn,
            neighbors,
            prob,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the topology has no nodes (never true for constructed
    /// topologies, which require at least two).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId)
    }

    /// Node positions, if the topology was built from geometry.
    pub fn points(&self) -> Option<&[Point]> {
        self.points.as_deref()
    }

    /// The transmission/interference range, if built from geometry.
    pub fn range(&self) -> Option<f64> {
        self.range
    }

    /// Reception probability of the directed link `from → to`, if present.
    pub fn link_prob(&self, from: NodeId, to: NodeId) -> Option<f64> {
        self.prob.get(&(from.0, to.0)).copied()
    }

    /// Outgoing links of `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn out_links(&self, i: NodeId) -> &[Link] {
        &self.out[i.0]
    }

    /// Incoming links of `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn in_links(&self, i: NodeId) -> &[Link] {
        &self.inn[i.0]
    }

    /// Interference neighborhood `N(i)`: nodes within range of `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn neighbors(&self, i: NodeId) -> &[NodeId] {
        &self.neighbors[i.0]
    }

    /// All directed links.
    pub fn links(&self) -> impl Iterator<Item = Link> + '_ {
        self.out.iter().flatten().copied()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.prob.len()
    }

    /// Average number of neighbors per node (the paper's deployment
    /// *density*; 6 in the evaluation).
    pub fn avg_degree(&self) -> f64 {
        let total: usize = self.neighbors.iter().map(Vec::len).sum();
        total as f64 / self.n as f64
    }

    /// Mean reception probability over *in-range* links — links between
    /// interference neighbors (the paper quotes 0.58 for the lossy setting
    /// and 0.91 for the high-power one). Opportunistic tail links beyond
    /// the range are excluded from the statistic, as the paper's link set
    /// is the in-range graph.
    pub fn avg_link_quality(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (&(i, j), &p) in &self.prob {
            if self.neighbors[i].contains(&NodeId(j)) {
                sum += p;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// `true` if every node can reach every other along directed links.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        // Strong connectivity via forward and reverse BFS from node 0.
        self.bfs_count(NodeId(0), false) == self.n && self.bfs_count(NodeId(0), true) == self.n
    }

    fn bfs_count(&self, start: NodeId, reverse: bool) -> usize {
        let mut seen = vec![false; self.n];
        let mut queue = vec![start];
        seen[start.0] = true;
        let mut count = 0;
        while let Some(u) = queue.pop() {
            count += 1;
            let links = if reverse {
                &self.inn[u.0]
            } else {
                &self.out[u.0]
            };
            for l in links {
                let v = if reverse { l.from } else { l.to };
                if !seen[v.0] {
                    seen[v.0] = true;
                    queue.push(v);
                }
            }
        }
        count
    }

    /// Returns the pair of nodes with the largest ETX distance among
    /// connected pairs — a convenient long unicast for demos and tests.
    pub fn farthest_pair(&self) -> (NodeId, NodeId) {
        let mut best = (NodeId(0), NodeId(1));
        let mut best_d = -1.0f64;
        for src in self.nodes() {
            let dist = crate::dijkstra::shortest_paths(self, src, crate::etx::link_cost);
            for dst in self.nodes() {
                if src != dst {
                    if let Some(d) = dist.cost(dst) {
                        if d > best_d {
                            best_d = d;
                            best = (src, dst);
                        }
                    }
                }
            }
        }
        best
    }
}

/// Deterministic standard-normal draw for an unordered node pair: a
/// splitmix-style hash of `(seed, lo, hi)` feeds a Box-Muller transform.
fn pair_normal(seed: u64, lo: usize, hi: usize) -> f64 {
    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let h1 = splitmix(seed ^ (lo as u64).wrapping_mul(0x517c_c1b7_2722_0a95) ^ (hi as u64));
    let h2 = splitmix(h1);
    // Two uniforms in (0, 1]; Box-Muller.
    let u1 = ((h1 >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    let u2 = ((h2 >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Topology {
        // s=0 → {1, 2} → t=3, a classic two-path topology.
        let links = vec![
            Link {
                from: NodeId(0),
                to: NodeId(1),
                p: 0.8,
            },
            Link {
                from: NodeId(0),
                to: NodeId(2),
                p: 0.5,
            },
            Link {
                from: NodeId(1),
                to: NodeId(3),
                p: 0.6,
            },
            Link {
                from: NodeId(2),
                to: NodeId(3),
                p: 0.9,
            },
            Link {
                from: NodeId(3),
                to: NodeId(0),
                p: 1.0,
            }, // return path
        ];
        Topology::from_links(4, links).unwrap()
    }

    #[test]
    fn explicit_links_are_queryable() {
        let t = diamond();
        assert_eq!(t.len(), 4);
        assert_eq!(t.link_prob(NodeId(0), NodeId(1)), Some(0.8));
        assert_eq!(t.link_prob(NodeId(1), NodeId(0)), None);
        assert_eq!(t.out_links(NodeId(0)).len(), 2);
        assert_eq!(t.in_links(NodeId(3)).len(), 2);
        assert_eq!(t.link_count(), 5);
    }

    #[test]
    fn neighborhoods_are_bidirectional() {
        let t = diamond();
        assert_eq!(t.neighbors(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.neighbors(NodeId(1)), &[NodeId(0), NodeId(3)]);
    }

    #[test]
    fn from_points_links_only_within_range() {
        let phy = Phy::paper_lossy();
        let r = phy.range();
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(r * 0.5, 0.0),
            Point::new(r * 10.0, 0.0), // isolated
        ];
        let t = Topology::from_points(points, &phy).unwrap();
        assert!(t.link_prob(NodeId(0), NodeId(1)).is_some());
        assert!(t.link_prob(NodeId(0), NodeId(2)).is_none());
        assert!(!t.is_connected());
        assert_eq!(t.range(), Some(r));
    }

    #[test]
    fn link_probabilities_match_phy() {
        let phy = Phy::paper_lossy();
        let d = phy.range() * 0.6;
        let t =
            Topology::from_points(vec![Point::new(0.0, 0.0), Point::new(d, 0.0)], &phy).unwrap();
        let p = t.link_prob(NodeId(0), NodeId(1)).unwrap();
        assert!((p - phy.reception_prob(d)).abs() < 1e-12);
        // Symmetric distances give symmetric probabilities.
        assert_eq!(t.link_prob(NodeId(1), NodeId(0)), Some(p));
    }

    #[test]
    fn invalid_construction_is_rejected() {
        assert!(matches!(
            Topology::from_links(1, vec![]),
            Err(TopoError::TooFewNodes { requested: 1 })
        ));
        assert!(matches!(
            Topology::from_links(
                2,
                vec![Link {
                    from: NodeId(0),
                    to: NodeId(5),
                    p: 0.5
                }]
            ),
            Err(TopoError::UnknownNode(_))
        ));
        assert!(matches!(
            Topology::from_links(
                2,
                vec![Link {
                    from: NodeId(0),
                    to: NodeId(1),
                    p: 0.0
                }]
            ),
            Err(TopoError::InvalidProbability { .. })
        ));
        assert!(matches!(
            Topology::from_links(
                2,
                vec![Link {
                    from: NodeId(0),
                    to: NodeId(1),
                    p: 1.5
                }]
            ),
            Err(TopoError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn connectivity_detection() {
        let t = diamond();
        assert!(t.is_connected());
        let no_return = Topology::from_links(
            3,
            vec![
                Link {
                    from: NodeId(0),
                    to: NodeId(1),
                    p: 1.0,
                },
                Link {
                    from: NodeId(1),
                    to: NodeId(2),
                    p: 1.0,
                },
            ],
        )
        .unwrap();
        assert!(!no_return.is_connected());
    }

    #[test]
    fn statistics() {
        let t = diamond();
        let q = t.avg_link_quality();
        assert!((q - (0.8 + 0.5 + 0.6 + 0.9 + 1.0) / 5.0).abs() < 1e-12);
        assert!(t.avg_degree() > 0.0);
    }

    #[test]
    fn farthest_pair_spans_the_diamond() {
        let t = diamond();
        let (s, d) = t.farthest_pair();
        assert_ne!(s, d);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::new(7).to_string(), "n7");
        assert_eq!(NodeId::from(7).index(), 7);
    }
}
