//! Random node deployments with controlled density.
//!
//! The paper's target topology (Sec. 5) is 300 randomly deployed nodes with
//! *density* 6: each node has on average 5 neighbors within its range. We
//! size the square deployment area so that the expected number of other
//! nodes inside a range-disk matches the requested density, then resample
//! until the resulting lossy graph is connected.

use rand::{Rng, SeedableRng};

use crate::dijkstra;
use crate::etx;
use crate::geom::Point;
use crate::graph::{NodeId, Topology};
use crate::phy::Phy;

/// A random node placement together with the PHY model that defines its
/// connectivity.
///
/// # Examples
///
/// ```
/// use omnc_net_topo::{deploy::Deployment, phy::Phy};
///
/// let net = Deployment::random(50, 6.0, &Phy::paper_lossy(), 7).into_topology();
/// assert_eq!(net.len(), 50);
/// assert!(net.is_connected());
/// // Density 6 means roughly 5-7 neighbors on average.
/// assert!((3.0..10.0).contains(&net.avg_degree()));
/// ```
#[derive(Debug, Clone)]
pub struct Deployment {
    points: Vec<Point>,
    phy: Phy,
    side: f64,
    seed: u64,
    attempts: u32,
}

impl Deployment {
    /// Deploys `n` nodes uniformly at random in a square sized for the given
    /// average `density` (expected nodes within range of a node), retrying
    /// with derived seeds until the topology is connected.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, if `density` is not positive, or if no connected
    /// deployment is found within 1000 attempts (practically impossible for
    /// densities ≥ 4 once `n ≥ 10`).
    pub fn random(n: usize, density: f64, phy: &Phy, seed: u64) -> Self {
        assert!(n >= 2, "a deployment needs at least 2 nodes");
        assert!(
            density.is_finite() && density > 0.0,
            "density must be positive"
        );
        let r = phy.range();
        let side = r * (((n.saturating_sub(1)) as f64) * std::f64::consts::PI / density).sqrt();
        for attempt in 0..1000u32 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (u64::from(attempt) << 32));
            let points: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
                .collect();
            let topo = Topology::from_points_seeded(points.clone(), phy, Some(seed))
                .expect("n >= 2 points always form a topology");
            if topo.is_connected() {
                return Deployment {
                    points,
                    phy: phy.clone(),
                    side,
                    seed,
                    attempts: attempt + 1,
                };
            }
        }
        panic!("no connected deployment of {n} nodes at density {density} after 1000 attempts");
    }

    /// The node positions.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Side length of the deployment square.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// The PHY model used for connectivity.
    pub fn phy(&self) -> &Phy {
        &self.phy
    }

    /// The seed that produced this deployment.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How many placements were sampled before a connected one was found.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Builds the lossy topology graph for this deployment.
    pub fn into_topology(self) -> Topology {
        Topology::from_points_seeded(self.points, &self.phy, Some(self.seed))
            .expect("validated at construction")
    }

    /// Builds the topology for the *same placement* under a different PHY —
    /// the paper's high-power experiment re-evaluates link qualities on the
    /// identical topology (Fig. 2 right).
    pub fn topology_with_phy(&self, phy: &Phy) -> Topology {
        Topology::from_points_seeded(self.points.clone(), phy, Some(self.seed))
            .expect("validated at construction")
    }
}

/// Draws a random source/destination pair whose ETX-shortest path has a hop
/// count within `hops` (inclusive), as the paper does with a constraint of
/// 4–10 hops. Returns `None` if `max_tries` random draws fail.
pub fn random_session<R: Rng + ?Sized>(
    topology: &Topology,
    rng: &mut R,
    hops: (usize, usize),
    max_tries: usize,
) -> Option<(NodeId, NodeId)> {
    let n = topology.len();
    for _ in 0..max_tries {
        let s = NodeId::new(rng.gen_range(0..n));
        let t = NodeId::new(rng.gen_range(0..n));
        if s == t {
            continue;
        }
        let sp = dijkstra::shortest_paths(topology, s, etx::link_cost);
        if let Some(h) = sp.hops_to(t) {
            if h >= hops.0 && h <= hops.1 {
                return Some((s, t));
            }
        }
    }
    None
}

/// Draws `count` session endpoint pairs for a shared-mesh workload. Each
/// draw re-seeds its own rng from `seed_for(k)`, so session `k`'s endpoints
/// are a pure function of `k` — adding or removing sessions never perturbs
/// the others, and a multi-session workload sees exactly the pairs the
/// corresponding single-session experiments would. Returns `None` if any
/// draw exhausts `max_tries`.
pub fn random_sessions(
    topology: &Topology,
    count: usize,
    hops: (usize, usize),
    max_tries: usize,
    mut seed_for: impl FnMut(u64) -> u64,
) -> Option<Vec<(NodeId, NodeId)>> {
    (0..count as u64)
        .map(|k| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed_for(k));
            random_session(topology, &mut rng, hops, max_tries)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deployment_is_reproducible() {
        let phy = Phy::paper_lossy();
        let a = Deployment::random(30, 6.0, &phy, 5);
        let b = Deployment::random(30, 6.0, &phy, 5);
        assert_eq!(a.points(), b.points());
        assert_eq!(a.into_topology(), b.into_topology());
    }

    #[test]
    fn different_seeds_differ() {
        let phy = Phy::paper_lossy();
        let a = Deployment::random(30, 6.0, &phy, 5);
        let b = Deployment::random(30, 6.0, &phy, 6);
        assert_ne!(a.points(), b.points());
    }

    #[test]
    fn density_is_approximately_honored() {
        let phy = Phy::paper_lossy();
        // Average over several deployments to smooth sampling noise.
        let mut total = 0.0;
        for seed in 0..5 {
            let t = Deployment::random(120, 6.0, &phy, seed).into_topology();
            total += t.avg_degree();
        }
        let avg = total / 5.0;
        // Border effects push the realized degree slightly below the target.
        assert!((3.5..8.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn high_power_topology_shares_placement() {
        let phy = Phy::paper_lossy();
        let dep = Deployment::random(40, 6.0, &phy, 11);
        let lossy = dep.topology_with_phy(&phy);
        let strong = dep.topology_with_phy(&Phy::paper_high_quality());
        // More power can only revive shadow-blocked links, never lose one.
        assert!(strong.link_count() >= lossy.link_count());
        for l in lossy.links() {
            assert!(strong
                .link_prob(l.from, l.to)
                .is_some_and(|p| p >= l.p - 1e-12));
        }
        assert!(strong.avg_link_quality() > lossy.avg_link_quality());
    }

    #[test]
    fn random_session_respects_hop_bounds() {
        let phy = Phy::paper_lossy();
        let t = Deployment::random(120, 6.0, &phy, 3).into_topology();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut found = 0;
        for _ in 0..10 {
            if let Some((s, d)) = random_session(&t, &mut rng, (4, 10), 500) {
                let sp = dijkstra::shortest_paths(&t, s, etx::link_cost);
                let h = sp.hops_to(d).unwrap();
                assert!((4..=10).contains(&h), "hops {h}");
                found += 1;
            }
        }
        assert!(found > 0, "no session found at all");
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn tiny_deployment_panics() {
        let _ = Deployment::random(1, 6.0, &Phy::paper_lossy(), 0);
    }
}
