//! The decentralized node-selection procedure (Sec. 4).
//!
//! Every node computes its ETX distance to the destination; the source
//! floods a selection packet and a node joins the forwarder set when it
//! hears the flood from an already-selected node that is *farther* from the
//! destination than itself. The result is the paper's topology graph
//! `G(V, E)`: selected nodes plus the directed "downhill" links between
//! them, along which every relay is closer to the destination than its
//! predecessor. Because the distance strictly decreases along every edge,
//! the graph is a DAG.

use crate::etx;
use crate::graph::{Link, NodeId, Topology};

/// The forwarder subgraph produced by node selection for one unicast pair.
#[derive(Debug, Clone)]
pub struct Selection {
    src: NodeId,
    dst: NodeId,
    selected: Vec<NodeId>,
    is_selected: Vec<bool>,
    dist_to_dst: Vec<Option<f64>>,
    subgraph: Topology,
}

/// Runs node selection for the unicast `src → dst` on `topology`.
///
/// # Panics
///
/// Panics if `src == dst`, if either node is out of range, or if `dst` is
/// unreachable from `src` (callers draw sessions from connected topologies).
///
/// # Examples
///
/// ```
/// use omnc_net_topo::{graph::{Link, NodeId, Topology}, select::select_forwarders};
///
/// // A diamond: both relays are selected, the detour-free DAG emerges.
/// let t = Topology::from_links(4, vec![
///     Link { from: NodeId::new(0), to: NodeId::new(1), p: 0.8 },
///     Link { from: NodeId::new(0), to: NodeId::new(2), p: 0.8 },
///     Link { from: NodeId::new(1), to: NodeId::new(3), p: 0.8 },
///     Link { from: NodeId::new(2), to: NodeId::new(3), p: 0.8 },
/// ])?;
/// let sel = select_forwarders(&t, NodeId::new(0), NodeId::new(3));
/// assert_eq!(sel.nodes().len(), 4);
/// assert_eq!(sel.path_count(), 2);
/// # Ok::<(), omnc_net_topo::TopoError>(())
/// ```
pub fn select_forwarders(topology: &Topology, src: NodeId, dst: NodeId) -> Selection {
    assert_ne!(src, dst, "source and destination must differ");
    assert!(src.index() < topology.len(), "unknown source {src}");
    assert!(dst.index() < topology.len(), "unknown destination {dst}");

    let dist = etx::distances_to(topology, dst);
    assert!(
        dist[src.index()].is_some(),
        "destination {dst} unreachable from source {src}"
    );

    // Flood from the source along strictly distance-decreasing links.
    let n = topology.len();
    let mut is_selected = vec![false; n];
    is_selected[src.index()] = true;
    let mut queue = vec![src];
    while let Some(u) = queue.pop() {
        let du = dist[u.index()].expect("selected nodes have finite distance");
        for link in topology.out_links(u) {
            let v = link.to;
            if is_selected[v.index()] {
                continue;
            }
            if let Some(dv) = dist[v.index()] {
                if dv < du {
                    is_selected[v.index()] = true;
                    queue.push(v);
                }
            }
        }
    }
    debug_assert!(
        is_selected[dst.index()],
        "dst lies downhill of src by construction"
    );

    let selected: Vec<NodeId> = topology
        .nodes()
        .filter(|v| is_selected[v.index()])
        .collect();

    // Keep only downhill links between selected nodes.
    let links: Vec<Link> = topology
        .links()
        .filter(|l| {
            is_selected[l.from.index()]
                && is_selected[l.to.index()]
                && match (dist[l.from.index()], dist[l.to.index()]) {
                    (Some(df), Some(dt)) => dt < df,
                    _ => false,
                }
        })
        .collect();
    let subgraph = Topology::from_links(n, links).expect("filtered links remain valid");

    Selection {
        src,
        dst,
        selected,
        is_selected,
        dist_to_dst: dist,
        subgraph,
    }
}

impl Selection {
    /// The unicast source.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The unicast destination.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// All selected nodes (source and destination included).
    pub fn nodes(&self) -> &[NodeId] {
        &self.selected
    }

    /// `true` if `v` participates in the unicast.
    pub fn contains(&self, v: NodeId) -> bool {
        v.index() < self.is_selected.len() && self.is_selected[v.index()]
    }

    /// ETX distance of `v` to the destination, if reachable.
    pub fn dist_to_dst(&self, v: NodeId) -> Option<f64> {
        self.dist_to_dst.get(v.index()).copied().flatten()
    }

    /// The forwarder DAG: selected nodes with their downhill links. Node ids
    /// are shared with the original topology; unselected nodes are isolated.
    pub fn subgraph(&self) -> &Topology {
        &self.subgraph
    }

    /// Number of distinct source→destination paths in the forwarder DAG.
    /// Saturates at `u128::MAX`.
    pub fn path_count(&self) -> u128 {
        count_paths(&self.subgraph, self.src, self.dst)
    }

    /// Maximum node-disjoint source→destination paths in the forwarder DAG
    /// (the paper's "total number of available paths after the node
    /// selection procedure", Fig. 4).
    pub fn disjoint_paths(&self) -> usize {
        disjoint_path_count(&self.subgraph, self.src, self.dst)
    }
}

/// Maximum number of *node-disjoint* `src → dst` paths in a DAG — the
/// paper's notion of path diversity (Fig. 4 normalizes by the paths
/// "available after the node selection procedure"). Computed by unit-
/// capacity max flow with node splitting (Ford-Fulkerson; the value is at
/// most the source degree, so a handful of BFS augmentations suffice).
pub fn disjoint_path_count(dag: &Topology, src: NodeId, dst: NodeId) -> usize {
    // Node splitting: node v becomes v_in (2v) and v_out (2v+1) joined by a
    // unit edge, except src/dst which are uncapacitated.
    let n = dag.len();
    let idx_in = |v: NodeId| 2 * v.index();
    let idx_out = |v: NodeId| 2 * v.index() + 1;
    let mut cap: std::collections::BTreeMap<(usize, usize), i32> =
        std::collections::BTreeMap::new();
    for v in dag.nodes() {
        let c = if v == src || v == dst {
            i32::MAX / 4
        } else {
            1
        };
        cap.insert((idx_in(v), idx_out(v)), c);
    }
    for l in dag.links() {
        cap.insert((idx_out(l.from), idx_in(l.to)), 1);
    }
    let (s, t) = (idx_out(src), idx_in(dst));
    let mut flow = 0usize;
    loop {
        // BFS for an augmenting path in the residual graph.
        let mut prev = vec![usize::MAX; 2 * n];
        let mut queue = std::collections::VecDeque::from([s]);
        prev[s] = s;
        while let Some(u) = queue.pop_front() {
            if u == t {
                break;
            }
            for (&(a, b), &c) in cap.iter() {
                if a == u && c > 0 && prev[b] == usize::MAX {
                    prev[b] = a;
                    queue.push_back(b);
                }
            }
        }
        if prev[t] == usize::MAX {
            break;
        }
        let mut v = t;
        while v != s {
            let u = prev[v];
            *cap.get_mut(&(u, v)).expect("edge on path") -= 1;
            *cap.entry((v, u)).or_insert(0) += 1;
            v = u;
        }
        flow += 1;
        if flow > n {
            break; // defensive: cannot exceed the node count
        }
    }
    flow
}

/// Counts distinct `src → dst` paths in a DAG by memoized DFS, saturating.
///
/// # Panics
///
/// May overflow the stack or loop forever if the graph has cycles reachable
/// from `src`; selections are DAGs by construction.
pub fn count_paths(dag: &Topology, src: NodeId, dst: NodeId) -> u128 {
    fn rec(dag: &Topology, u: NodeId, dst: NodeId, memo: &mut [Option<u128>]) -> u128 {
        if u == dst {
            return 1;
        }
        if let Some(c) = memo[u.index()] {
            return c;
        }
        let mut total: u128 = 0;
        for l in dag.out_links(u) {
            total = total.saturating_add(rec(dag, l.to, dst, memo));
        }
        memo[u.index()] = Some(total);
        total
    }
    let mut memo = vec![None; dag.len()];
    rec(dag, src, dst, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use crate::phy::Phy;

    fn grid() -> Topology {
        // 0 — 1
        // |   |     all links bidirectional p=0.5, plus a "behind" node 4
        // 2 — 3     linked only to the source 0.
        let mut links = Vec::new();
        let mut add = |a: usize, b: usize| {
            links.push(Link {
                from: NodeId::new(a),
                to: NodeId::new(b),
                p: 0.5,
            });
            links.push(Link {
                from: NodeId::new(b),
                to: NodeId::new(a),
                p: 0.5,
            });
        };
        add(0, 1);
        add(0, 2);
        add(1, 3);
        add(2, 3);
        add(0, 4);
        Topology::from_links(5, links).unwrap()
    }

    #[test]
    fn nodes_behind_the_source_are_pruned() {
        let t = grid();
        let sel = select_forwarders(&t, NodeId::new(0), NodeId::new(3));
        assert!(sel.contains(NodeId::new(0)));
        assert!(sel.contains(NodeId::new(1)));
        assert!(sel.contains(NodeId::new(2)));
        assert!(sel.contains(NodeId::new(3)));
        assert!(
            !sel.contains(NodeId::new(4)),
            "node behind the source must be pruned"
        );
        assert_eq!(sel.path_count(), 2);
    }

    #[test]
    fn subgraph_links_point_downhill() {
        let t = grid();
        let sel = select_forwarders(&t, NodeId::new(0), NodeId::new(3));
        for l in sel.subgraph().links() {
            let df = sel.dist_to_dst(l.from).unwrap();
            let dt = sel.dist_to_dst(l.to).unwrap();
            assert!(dt < df, "{} -> {} not downhill", l.from, l.to);
        }
    }

    #[test]
    fn subgraph_is_acyclic() {
        let phy = Phy::paper_lossy();
        let t = Deployment::random(80, 6.0, &phy, 21).into_topology();
        let (s, d) = t.farthest_pair();
        let sel = select_forwarders(&t, s, d);
        // Kahn's algorithm terminates consuming all linked nodes iff acyclic.
        let g = sel.subgraph();
        let mut indeg = vec![0usize; g.len()];
        for l in g.links() {
            indeg[l.to.index()] += 1;
        }
        let mut queue: Vec<NodeId> = g.nodes().filter(|v| indeg[v.index()] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for l in g.out_links(u) {
                indeg[l.to.index()] -= 1;
                if indeg[l.to.index()] == 0 {
                    queue.push(l.to);
                }
            }
        }
        assert_eq!(seen, g.len(), "cycle detected in forwarder subgraph");
    }

    #[test]
    fn every_selected_node_reaches_dst_in_subgraph() {
        let phy = Phy::paper_lossy();
        let t = Deployment::random(60, 6.0, &phy, 33).into_topology();
        let (s, d) = t.farthest_pair();
        let sel = select_forwarders(&t, s, d);
        for &v in sel.nodes() {
            if v == d {
                continue;
            }
            assert!(
                count_paths(sel.subgraph(), v, d) > 0,
                "{v} selected but cannot reach {d}"
            );
        }
    }

    #[test]
    fn line_topology_selects_the_line() {
        let mut links = Vec::new();
        for i in 0..4 {
            links.push(Link {
                from: NodeId::new(i),
                to: NodeId::new(i + 1),
                p: 0.5,
            });
            links.push(Link {
                from: NodeId::new(i + 1),
                to: NodeId::new(i),
                p: 0.5,
            });
        }
        let t = Topology::from_links(5, links).unwrap();
        let sel = select_forwarders(&t, NodeId::new(0), NodeId::new(4));
        assert_eq!(sel.nodes().len(), 5);
        assert_eq!(sel.path_count(), 1);
        // Only forward links survive.
        assert_eq!(sel.subgraph().link_count(), 4);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_endpoints_panic() {
        let t = grid();
        let _ = select_forwarders(&t, NodeId::new(0), NodeId::new(0));
    }
}
