//! Post-hoc diagnostics for rate-control runs: how good is an allocation,
//! and where is it leaving capacity on the table?
//!
//! The distributed algorithm is a dual method; its recovered primal point
//! is feasible but not certified. This module quantifies the gap against
//! the exact LP and decomposes an allocation's slack — which MAC
//! neighborhoods are saturated, which links are under-driven — so users
//! can see *why* a topology yields the throughput it does.

use crate::error::OptError;
use crate::flow;
use crate::instance::SUnicast;
use crate::lp;
use crate::RateAllocation;

/// A quality report for one allocation on one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationReport {
    /// The allocation's end-to-end rate (absolute units).
    pub throughput: f64,
    /// The exact LP optimum `γ*`.
    pub optimum: f64,
    /// `throughput / optimum` (1.0 = certified optimal).
    pub optimality: f64,
    /// Per-node MAC load `b_i + Σ_{j∈N(i)} b_j`, normalized by capacity;
    /// 1.0 = saturated neighborhood (indexed by instance-local node).
    pub mac_load: Vec<f64>,
    /// The highest MAC load (the binding bottleneck; ≈ 1.0 after the
    /// boundary rescale).
    pub worst_mac_load: f64,
    /// Fraction of nodes with a non-trivial broadcast rate (> 1% of the
    /// per-node mean) — the allocation-level node utility.
    pub active_nodes: f64,
    /// Per-link slack of coupling (5): `b_i·p_ij − x_ij`, normalized by
    /// capacity (indexed by instance link).
    pub coupling_slack: Vec<f64>,
}

/// Builds the report for `allocation` on `problem`.
///
/// # Errors
///
/// Returns [`OptError::LpFailed`] if the exact reference solve fails.
pub fn report(
    problem: &SUnicast,
    allocation: &RateAllocation,
) -> Result<AllocationReport, OptError> {
    let exact = lp::solve_exact(problem)?;
    let cap = problem.capacity();
    let b = allocation.broadcast_rates();

    let mut mac_load = Vec::with_capacity(problem.node_count());
    for i in 0..problem.node_count() {
        let load: f64 = b[i] + problem.neighbors(i).iter().map(|&j| b[j]).sum::<f64>();
        mac_load.push(load / cap);
    }
    let worst_mac_load = mac_load
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != problem.src())
        .map(|(_, &l)| l)
        .fold(0.0f64, f64::max);

    let mean_b: f64 = b.iter().sum::<f64>() / b.len().max(1) as f64;
    let active = b.iter().filter(|&&v| v > 0.01 * mean_b.max(1e-12)).count();
    let active_nodes = active as f64 / b.len().max(1) as f64;

    let x = allocation.link_rates();
    let coupling_slack = problem
        .links()
        .map(|(id, l)| (b[l.from] * l.p - x[id.index()]) / cap)
        .collect();

    let throughput = allocation.throughput();
    Ok(AllocationReport {
        throughput,
        optimum: exact.gamma,
        optimality: if exact.gamma > 0.0 {
            throughput / exact.gamma
        } else {
            0.0
        },
        mac_load,
        worst_mac_load,
        active_nodes,
        coupling_slack,
    })
}

/// How much more flow the instance could carry if `node`'s neighborhood
/// constraint were relaxed by `extra` (absolute rate units) — a cheap
/// "what is the bottleneck worth" probe computed by re-running max flow
/// with the node's own rate raised by `extra`.
///
/// # Panics
///
/// Panics if `node` is out of range or `extra` is negative.
pub fn bottleneck_value(
    problem: &SUnicast,
    allocation: &RateAllocation,
    node: usize,
    extra: f64,
) -> f64 {
    assert!(node < problem.node_count(), "node out of range");
    assert!(extra >= 0.0, "extra must be non-negative");
    let cap = problem.capacity();
    let mut b: Vec<f64> = allocation
        .broadcast_rates()
        .iter()
        .map(|v| v / cap)
        .collect();
    b[node] += extra / cap;
    let (rate, _) = flow::supported_rate(problem, &b);
    rate * cap - allocation.throughput()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::tests::diamond;
    use crate::RateControl;

    fn setup() -> (SUnicast, RateAllocation) {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let alloc = RateControl::new(&p).run();
        (p, alloc)
    }

    #[test]
    fn report_is_internally_consistent() {
        let (p, alloc) = setup();
        let r = report(&p, &alloc).expect("solvable");
        assert!(r.optimality > 0.0 && r.optimality <= 1.0 + 1e-9);
        assert_eq!(r.mac_load.len(), p.node_count());
        assert_eq!(r.coupling_slack.len(), p.link_count());
        // Feasibility: no neighborhood above capacity, no negative coupling.
        assert!(r.worst_mac_load <= 1.0 + 1e-6, "load {}", r.worst_mac_load);
        assert!(r.coupling_slack.iter().all(|&s| s >= -1e-6));
        assert!((0.0..=1.0).contains(&r.active_nodes));
    }

    #[test]
    fn boundary_rescale_saturates_the_bottleneck() {
        let (p, alloc) = setup();
        let r = report(&p, &alloc).expect("solvable");
        // The recovery rescales onto the MAC boundary: the worst load is ~1.
        assert!(r.worst_mac_load > 0.9, "load {}", r.worst_mac_load);
    }

    #[test]
    fn relaxing_the_bottleneck_cannot_hurt() {
        let (p, alloc) = setup();
        for node in 0..p.node_count() {
            let gain = bottleneck_value(&p, &alloc, node, 0.1 * p.capacity());
            assert!(gain >= -1e-6, "node {node}: {gain}");
        }
    }

    #[test]
    fn some_node_is_a_real_bottleneck_on_the_diamond() {
        let (p, alloc) = setup();
        // Raising at least one node's rate must buy additional flow — the
        // allocation sits on the boundary of the feasible region.
        let best_gain = (0..p.node_count())
            .map(|node| bottleneck_value(&p, &alloc, node, 0.5 * p.capacity()))
            .fold(0.0f64, f64::max);
        assert!(best_gain > 0.0, "no node relaxation helped");
    }
}
