//! Error type for the optimization framework.

use core::fmt;

/// Errors from building or solving sUnicast instances.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptError {
    /// The forwarder selection contains no usable link.
    EmptyProblem,
    /// The exact LP reference failed (infeasible/unbounded indicates a bug
    /// in instance construction; the message carries the solver's reason).
    LpFailed(String),
    /// A parameter that must be positive and finite was not.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The supplied value.
        value: f64,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::EmptyProblem => write!(f, "sUnicast instance has no links"),
            OptError::LpFailed(why) => write!(f, "exact LP solve failed: {why}"),
            OptError::InvalidParameter { name, value } => {
                write!(
                    f,
                    "parameter {name} must be positive and finite, got {value}"
                )
            }
        }
    }
}

impl std::error::Error for OptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OptError::InvalidParameter {
            name: "capacity",
            value: -1.0,
        };
        assert!(e.to_string().contains("capacity"));
    }
}
