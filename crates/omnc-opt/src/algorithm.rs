//! The distributed rate-control algorithm of Table 1, run centrally.
//!
//! The paper relaxes the coupling constraint (5) with Lagrange multipliers
//! `λ` and decomposes the relaxed problem into
//!
//! * **SUB1** — multipath opportunistic routing: a shortest-path problem
//!   with link costs `λ_ij`, made strictly convex via the utility
//!   transformation `U(γ) = ln γ`, so each iteration sends
//!   `γ = U'⁻¹(p_min)` units of flow down the current shortest path
//!   (eqs. (11)–(12)) and the primal is recovered by ergodic averaging
//!   (eq. (13));
//! * **SUB2** — broadcast/encoding rate allocation: congestion prices `β_i`
//!   per receiver (eq. (15)) and a proximal update of the broadcast rates
//!   `b_i` (eq. (17)), again with primal recovery (eq. (18));
//!
//! coordinated by the subgradient update of `λ` (eq. (8)) under the
//! diminishing step size `θ(t) = A/(B + C·t)`.
//!
//! This module is the *centralized* driver used by protocols and benches;
//! [`crate::distributed`] runs the identical arithmetic through per-node
//! message passing and is tested to produce the same iterates.

use net_topo::dijkstra;
use net_topo::graph::{Link, NodeId, Topology};
use serde::{Deserialize, Serialize};

use crate::flow;
use crate::instance::SUnicast;
use crate::step::StepSize;

/// Tunable parameters of the rate-control algorithm.
///
/// All defaults follow the paper (step size of Fig. 1; the proximal constant
/// `c` is the paper's "arbitrarily small positive constant" trade-off
/// between accuracy and speed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateControlParams {
    /// Subgradient step-size schedule `θ(t)`.
    pub step: StepSize,
    /// Proximal constant `c` of eq. (17); the update moves `b` by
    /// `gradient / (2c)` per iteration (in capacity-normalized units).
    pub proximal_c: f64,
    /// Weight `w` of the utility `U(γ) = w·ln(γ)` in SUB1. The optimizer of
    /// sUnicast is invariant to `w` (ln is monotone); `w` only conditions
    /// the dual dynamics.
    pub utility_weight: f64,
    /// Hard cap on iterations.
    pub max_iterations: usize,
    /// Convergence threshold: the run stops once the recovered broadcast
    /// vector moves less than `tolerance` (in capacity-normalized units)
    /// over a full check window.
    pub tolerance: f64,
    /// Iterations between convergence checks.
    pub check_window: usize,
    /// Which primal-recovery candidate the final allocation uses.
    pub recovery: Recovery,
}

/// Primal-recovery strategy for the final allocation (ablated by the
/// `ablate_primal_recovery` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Recovery {
    /// Best of all candidates (default).
    #[default]
    Best,
    /// Only the ergodic broadcast average `b̄` of eq. (18).
    AveragedB,
    /// Only the broadcast vector implied by the flow averages of eq. (13).
    FlowDerived,
    /// The *last iterate* `b(t)` instead of any average — demonstrates why
    /// primal recovery is needed at all (Sherali-Choi).
    LastIterate,
}

impl Default for RateControlParams {
    fn default() -> Self {
        RateControlParams {
            step: StepSize::PAPER,
            proximal_c: 2.0,
            utility_weight: 1.0,
            max_iterations: 1500,
            tolerance: 6e-3,
            check_window: 25,
            recovery: Recovery::Best,
        }
    }
}

/// Per-iteration trace of the run (drives the Fig. 1 convergence plot).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Instantaneous broadcast rates `b(t)` per iteration, absolute units.
    pub b_instant: Vec<Vec<f64>>,
    /// Primal-recovered broadcast rates `b̄(t)` per iteration.
    pub b_recovered: Vec<Vec<f64>>,
    /// The *allocation preview* per iteration: the best recovery candidate,
    /// MAC-rescaled — i.e. the rates the protocol would deploy if the run
    /// stopped here. This is the quantity whose convergence Fig. 1 shows.
    pub b_allocated: Vec<Vec<f64>>,
    /// SUB1 flow `γ_t` injected along the iteration's shortest path.
    pub gamma_step: Vec<f64>,
    /// Scalar subgradient telemetry per iteration (serializable; exported
    /// as JSONL by the convergence benches).
    pub records: Vec<IterationRecord>,
}

impl Trace {
    /// Folds this trace's convergence dynamics into windowed timeline
    /// series, with the iteration index as the epoch axis:
    /// `<prefix>/opt/dual_value` (the relaxed Lagrangian, whose settling
    /// marks dual convergence) and `<prefix>/opt/max_violation` (worst
    /// primal infeasibility, whose decay is the rate-control settling
    /// signal `omnc-report timeline` summarizes). A disabled recorder
    /// costs one branch.
    pub fn record_timeline(&self, timeline: &telemetry::TimeSeries, prefix: &str) {
        if !timeline.is_enabled() || self.records.is_empty() {
            return;
        }
        let name = |tail: &str| {
            if prefix.is_empty() {
                tail.to_owned()
            } else {
                format!("{prefix}/{tail}")
            }
        };
        let dual = timeline.series(&name("opt/dual_value"));
        let violation = timeline.series(&name("opt/max_violation"));
        for record in &self.records {
            let epoch = record.iter as f64;
            dual.record(epoch, record.dual_value);
            violation.record(epoch, record.max_violation);
        }
    }
}

/// One iteration's subgradient telemetry, in a flat serializable form.
///
/// `dual_value` evaluates the relaxed Lagrangian at the iterate,
/// `w·ln γ_t + Σ_e λ_e·(b_i·p_ij − x_ij)`, in capacity-normalized units; it
/// upper-bounds the optimal utility once the duals settle. `max_violation`
/// is the worst instantaneous primal infeasibility across the coupling rows
/// (5) and the MAC rows (4). `recovery_gap` is the distance between the
/// dual value and the utility of the recovered (feasible) primal — the
/// quantity that shrinks as primal recovery converges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration index `t`, starting at 1.
    pub iter: u64,
    /// Step size `θ(t)` of the diminishing schedule.
    pub step_size: f64,
    /// SUB1 injected flow `γ_t`, absolute units.
    pub gamma: f64,
    /// Relaxed Lagrangian at the iterate (normalized units).
    pub dual_value: f64,
    /// Worst positive violation over coupling and MAC constraints
    /// (normalized units; 0 when the instantaneous iterate is feasible).
    pub max_violation: f64,
    /// End-to-end rate supported by the recovered primal, absolute units.
    pub recovered_rate: f64,
    /// `dual_value − w·ln(recovered rate)` (normalized units).
    pub recovery_gap: f64,
}

/// The outcome of a rate-control run: a feasible rate allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RateAllocation {
    b: Vec<f64>,
    x: Vec<f64>,
    throughput: f64,
    iterations: usize,
    converged: bool,
}

impl RateAllocation {
    /// Assembles an allocation from raw parts (used by the distributed
    /// realization, which performs the identical recovery steps).
    pub(crate) fn from_parts(
        b: Vec<f64>,
        x: Vec<f64>,
        throughput: f64,
        iterations: usize,
        converged: bool,
    ) -> Self {
        RateAllocation {
            b,
            x,
            throughput,
            iterations,
            converged,
        }
    }

    /// Broadcast rate assigned to local node `i` (absolute units, e.g.
    /// bytes/second).
    pub fn broadcast_rate(&self, i: usize) -> f64 {
        self.b[i]
    }

    /// The full broadcast-rate vector, indexed by local node.
    pub fn broadcast_rates(&self) -> &[f64] {
        &self.b
    }

    /// Information rate routed over link `e`.
    pub fn link_rate(&self, e: crate::LinkId) -> f64 {
        self.x[e.index()]
    }

    /// The full link-rate vector.
    pub fn link_rates(&self) -> &[f64] {
        &self.x
    }

    /// End-to-end information rate supported by this allocation (the
    /// max-flow value under capacities `b_i·p_ij`).
    pub fn throughput(&self) -> f64 {
        self.throughput
    }

    /// Iterations executed before convergence (or the cap).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// `true` if the tolerance criterion stopped the run (rather than the
    /// iteration cap).
    pub fn converged(&self) -> bool {
        self.converged
    }
}

/// Runs the rate-control algorithm under each parameter set and returns the
/// allocation with the highest supported rate (all candidates are feasible,
/// so taking the best is sound). Protocol deployments use a small portfolio
/// because no single step schedule wins on every topology shape.
///
/// # Panics
///
/// Panics if `portfolio` is empty or contains invalid parameters.
pub fn run_best(problem: &SUnicast, portfolio: &[RateControlParams]) -> RateAllocation {
    assert!(!portfolio.is_empty(), "portfolio must not be empty");
    portfolio
        .iter()
        .map(|params| RateControl::with_params(problem, *params).run())
        .max_by(|a, b| {
            a.throughput()
                .partial_cmp(&b.throughput())
                .expect("throughputs are finite")
        })
        .expect("non-empty portfolio")
}

/// [`run_best`] with per-iteration tracing enabled on every candidate,
/// returning the winning allocation together with *its* trace (the one
/// whose dynamics produced the deployed rates). Tracing only records —
/// the iterate arithmetic is untouched — so the winner and its
/// allocation are bit-identical to [`run_best`] on the same inputs;
/// timeline-enabled runs therefore deploy exactly the rates plain runs
/// do.
///
/// # Panics
///
/// Panics if `portfolio` is empty or contains invalid parameters.
pub fn run_best_traced(
    problem: &SUnicast,
    portfolio: &[RateControlParams],
) -> (RateAllocation, Trace) {
    assert!(!portfolio.is_empty(), "portfolio must not be empty");
    portfolio
        .iter()
        .map(|params| {
            RateControl::with_params(problem, *params)
                .with_trace()
                .run_traced()
        })
        .max_by(|(a, _), (b, _)| {
            a.throughput()
                .partial_cmp(&b.throughput())
                .expect("throughputs are finite")
        })
        .expect("non-empty portfolio")
}

/// The default two-entry parameter portfolio used by [`run_best`] callers:
/// the paper's step schedule plus a slower-decay variant that wins on
/// topologies with highly heterogeneous link qualities.
pub fn default_portfolio() -> Vec<RateControlParams> {
    vec![
        RateControlParams::default(),
        RateControlParams {
            step: StepSize::Diminishing {
                a: 1.0,
                b: 0.5,
                c: 3.0,
            },
            max_iterations: 600,
            ..Default::default()
        },
    ]
}

/// Centralized driver for the Table 1 algorithm on one sUnicast instance.
#[derive(Debug, Clone)]
pub struct RateControl<'a> {
    problem: &'a SUnicast,
    params: RateControlParams,
    /// Shortest-path scaffold: the instance's links as a `Topology` over
    /// local indices, rebuilt once (costs change every iteration, the
    /// structure does not).
    scaffold: Topology,
    record_trace: bool,
    profiler: telemetry::Profiler,
}

/// Internal iterate state, all in capacity-normalized units.
///
/// Primal recovery uses *tail averaging*: the running averages restart when
/// the window doubles (`t ≥ 2·window_start`), so the final average always
/// covers at least the last half of the run. Early transient iterates —
/// where the duals are far from their limits — are forgotten, which is the
/// standard practical refinement of the Sherali-Choi recovery the paper
/// cites (any convex combination with vanishing per-iterate weight works).
#[derive(Debug, Clone)]
struct State {
    lambda: Vec<f64>,
    beta: Vec<f64>,
    b: Vec<f64>,
    b_avg: Vec<f64>,
    x_avg: Vec<f64>,
    /// First iteration of the current averaging window.
    window_start: usize,
    t: usize,
}

impl<'a> RateControl<'a> {
    /// Prepares a run with default parameters.
    pub fn new(problem: &'a SUnicast) -> Self {
        RateControl::with_params(problem, RateControlParams::default())
    }

    /// Prepares a run with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn with_params(problem: &'a SUnicast, params: RateControlParams) -> Self {
        assert!(params.proximal_c > 0.0, "proximal_c must be positive");
        assert!(
            params.utility_weight > 0.0,
            "utility_weight must be positive"
        );
        assert!(params.max_iterations > 0, "max_iterations must be positive");
        assert!(params.tolerance > 0.0, "tolerance must be positive");
        assert!(params.check_window > 0, "check_window must be positive");
        let links = problem
            .links()
            .map(|(_, l)| Link {
                from: NodeId::new(l.from),
                to: NodeId::new(l.to),
                p: l.p,
            })
            .collect();
        let scaffold = Topology::from_links(problem.node_count().max(2), links)
            .expect("instance links form a valid graph");
        RateControl {
            problem,
            params,
            scaffold,
            record_trace: false,
            profiler: telemetry::Profiler::disabled(),
        }
    }

    /// Enables per-iteration tracing (used by the Fig. 1 bench).
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Attaches a hierarchical profiler: the run opens an `opt.run` span
    /// with per-iteration `iterate` children (`sub1.shortest_path`,
    /// `sub2.proximal`, `dual_update`) and `primal_recovery` spans around
    /// the recovery/stopping-rule work.
    #[must_use]
    pub fn with_profiler(mut self, profiler: telemetry::Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// The parameters of this run.
    pub fn params(&self) -> &RateControlParams {
        &self.params
    }

    /// Runs to convergence and returns the recovered feasible allocation.
    pub fn run(&self) -> RateAllocation {
        self.run_traced().0
    }

    /// Runs to convergence, also returning the iteration trace (empty unless
    /// [`RateControl::with_trace`] was called).
    pub fn run_traced(&self) -> (RateAllocation, Trace) {
        let _run = self.profiler.span("opt.run");
        let n = self.problem.node_count();
        let m = self.problem.link_count();
        // Informed dual initialization: λ starts proportional to the ETX
        // link cost (1/p), scaled so the initial shortest-path cost is the
        // utility weight (γ_1 ≈ capacity). Diminishing steps converge from
        // any initialization (Sec. 3.3); starting from routing-aware prices
        // spares the algorithm relearning that lossy links are expensive.
        let sp0 = dijkstra::shortest_paths(&self.scaffold, NodeId::new(self.problem.src()), |l| {
            1.0 / l.p
        });
        let etx_best = sp0
            .cost(NodeId::new(self.problem.dst()))
            .unwrap_or(1.0)
            .max(1e-9);
        let lambda0: Vec<f64> = self
            .problem
            .links()
            .map(|(_, l)| self.params.utility_weight / (l.p * etx_best))
            .collect();
        let mut st = State {
            lambda: lambda0,
            beta: vec![0.0; n],
            // "Set elements in b, x to small positive numbers" (Table 1).
            b: vec![0.05; n],
            b_avg: vec![0.0; n],
            x_avg: vec![0.0; m],
            window_start: 1,
            t: 0,
        };
        let mut trace = Trace::default();
        let mut last_rate = f64::NEG_INFINITY;
        let mut converged = false;

        while st.t < self.params.max_iterations {
            st.t += 1;
            self.iterate(&mut st, &mut trace);
            if st.t.is_multiple_of(self.params.check_window) {
                // Stopping rule: the end-to-end rate supported by the
                // recovered broadcast vector has stabilized.
                let rate = self.supported_rate_of(&st);
                if (rate - last_rate).abs() < self.params.tolerance {
                    converged = true;
                    break;
                }
                last_rate = rate;
            }
        }

        (self.finish(&st, converged), trace)
    }

    /// One full iteration of Table 1 (steps 3–5) on normalized state.
    fn iterate(&self, st: &mut State, trace: &mut Trace) {
        let _iterate = self.profiler.span("iterate");
        let problem = self.problem;
        let n = problem.node_count();
        let theta = self.params.step.at(st.t);

        // ---- Step 3, SUB1: shortest path under λ, inject γ = U'⁻¹(p_min).
        let (x_step, gamma_t) = {
            let _sub1 = self.profiler.span("sub1.shortest_path");
            let lambda = &st.lambda;
            let sp = dijkstra::shortest_paths(&self.scaffold, NodeId::new(problem.src()), |l| {
                // Cost of a link is its multiplier; identify the link index by
                // endpoints (the scaffold preserves insertion order but not ids,
                // so we keep a lookup through the instance).
                self.link_index(l.from.index(), l.to.index())
                    .map(|e| lambda[e])
                    .unwrap_or(f64::INFINITY)
            });
            let mut x_step = vec![0.0; problem.link_count()];
            let gamma_t;
            if let Some(path) = sp.path_to(NodeId::new(problem.dst())) {
                let p_min: f64 = sp.cost(NodeId::new(problem.dst())).expect("path exists");
                // U(γ) = w·ln γ ⇒ γ = w / p_min, clamped to the capacity.
                gamma_t = if p_min <= 1e-12 {
                    1.0
                } else {
                    (self.params.utility_weight / p_min).min(1.0)
                };
                for w in path.windows(2) {
                    let e = self
                        .link_index(w[0].index(), w[1].index())
                        .expect("path follows instance links");
                    x_step[e] = gamma_t;
                }
            } else {
                gamma_t = 0.0;
            }
            // Primal recovery (13): averaging over the current tail window;
            // restart once the window has doubled so early transients fade.
            if st.t >= 2 * st.window_start && st.t > 4 {
                st.window_start = st.t;
            }
            let span = (st.t - st.window_start + 1) as f64;
            for (avg, inst) in st.x_avg.iter_mut().zip(&x_step) {
                *avg += (inst - *avg) / span;
            }
            (x_step, gamma_t)
        };
        let span = (st.t - st.window_start + 1) as f64;

        {
            // ---- Step 4, SUB2: proximal update of b, congestion prices β.
            let _sub2 = self.profiler.span("sub2.proximal");
            // w_i = Σ_j λ_ij p_ij over outgoing links (eq. after (14)).
            let mut w = vec![0.0; n];
            for (id, link) in problem.links() {
                w[link.from] += st.lambda[id.index()] * link.p;
            }
            let mut b_new = st.b.clone();
            for i in 0..n {
                // β_S ≡ 0: eq. (4) constrains receivers i ∈ V \ S only.
                let price: f64 = st.beta[i]
                    + problem
                        .neighbors(i)
                        .iter()
                        .map(|&j| st.beta[j])
                        .sum::<f64>();
                let grad = w[i] - price;
                // Loose bounds 0 ≤ b_i ≤ C keep iterates bounded (Sec. 3.3).
                b_new[i] = (st.b[i] + grad / (2.0 * self.params.proximal_c)).clamp(0.0, 1.0);
            }
            st.b = b_new;
            // Congestion price update (15) from the instantaneous load.
            for i in 0..n {
                if i == problem.src() {
                    continue; // no MAC constraint row at the source
                }
                let load: f64 =
                    st.b[i] + problem.neighbors(i).iter().map(|&j| st.b[j]).sum::<f64>();
                st.beta[i] = (st.beta[i] + theta * (load - 1.0)).max(0.0);
            }
            // Primal recovery (18) for b, over the same tail window.
            for (avg, inst) in st.b_avg.iter_mut().zip(&st.b) {
                *avg += (inst - *avg) / span;
            }
        }

        {
            // ---- Step 5: multiplier update (8): λ ← [λ − θ(b_i·p_ij − x_ij)]⁺.
            let _dual = self.profiler.span("dual_update");
            for (id, link) in problem.links() {
                let e = id.index();
                let slack = st.b[link.from] * link.p - x_step[e];
                st.lambda[e] = (st.lambda[e] - theta * slack).max(0.0);
            }
        }

        if self.record_trace {
            let cap = problem.capacity();
            trace.b_instant.push(st.b.iter().map(|v| v * cap).collect());
            trace
                .b_recovered
                .push(st.b_avg.iter().map(|v| v * cap).collect());
            trace.b_allocated.push(self.allocation_preview(st, cap));
            trace.gamma_step.push(gamma_t * cap);
            trace
                .records
                .push(self.record_iteration(st, theta, gamma_t, &x_step, cap));
        }
    }

    /// Assembles the scalar telemetry record for the iteration just taken.
    fn record_iteration(
        &self,
        st: &State,
        theta: f64,
        gamma_t: f64,
        x_step: &[f64],
        cap: f64,
    ) -> IterationRecord {
        let problem = self.problem;
        let w_util = self.params.utility_weight;
        let mut dual = w_util * gamma_t.max(1e-12).ln();
        let mut max_violation = 0.0f64;
        for (id, link) in problem.links() {
            let e = id.index();
            let slack = st.b[link.from] * link.p - x_step[e];
            dual += st.lambda[e] * slack;
            max_violation = max_violation.max(-slack);
        }
        for i in 0..problem.node_count() {
            if i == problem.src() {
                continue;
            }
            let load: f64 = st.b[i] + problem.neighbors(i).iter().map(|&j| st.b[j]).sum::<f64>();
            max_violation = max_violation.max(load - 1.0);
        }
        let recovered = self.supported_rate_of(st);
        IterationRecord {
            iter: st.t as u64,
            step_size: theta,
            gamma: gamma_t * cap,
            dual_value: dual,
            max_violation,
            recovered_rate: recovered * cap,
            recovery_gap: dual - w_util * recovered.max(1e-12).ln(),
        }
    }

    /// Converts the recovered normalized iterates into a feasible absolute
    /// allocation.
    ///
    /// Two primal-recovery candidates are formed, both made feasible by
    /// rescaling onto the MAC region (the paper notes feasible schedules are
    /// generated "by rescaling the broadcast rate"):
    ///
    /// 1. the averaged broadcast vector `b̄` of eq. (18);
    /// 2. the broadcast vector implied by the averaged *flows* `x̄` of
    ///    eq. (13) — "a multipath routing scheme that appropriately assigns
    ///    rate to all links" — with `b_i = max_j x̄_ij / p_ij` (coupling (5)
    ///    tight).
    ///
    /// The candidate supporting the larger end-to-end max flow wins; both
    /// are feasible, so this only improves the allocation.
    fn finish(&self, st: &State, converged: bool) -> RateAllocation {
        let _recovery = self.profiler.span("primal_recovery");
        let problem = self.problem;
        let (rate_norm, b_norm) = match self.params.recovery {
            Recovery::AveragedB => self.rescaled(&st.b_avg),
            Recovery::FlowDerived => self.rescaled(&self.b_from_flows(&st.x_avg)),
            Recovery::LastIterate => self.rescaled(&st.b),
            Recovery::Best => {
                let from_flows = self.b_from_flows(&st.x_avg);
                // Third candidate: the elementwise union of the two
                // recoveries — often best when b̄ funds relays the flow
                // average missed.
                let union: Vec<f64> = st
                    .b_avg
                    .iter()
                    .zip(&from_flows)
                    .map(|(a, b)| a.max(*b))
                    .collect();
                let (rate_a, b_a) = self.rescaled(&st.b_avg);
                let (rate_b, b_b) = self.rescaled(&from_flows);
                let (rate_c, b_c) = self.rescaled(&union);
                let mut best = (rate_a, b_a);
                for cand in [(rate_b, b_b), (rate_c, b_c)] {
                    if cand.0 > best.0 {
                        best = cand;
                    }
                }
                best
            }
        };
        let (_, x_norm) = flow::supported_rate(problem, &b_norm);

        let cap = problem.capacity();
        RateAllocation {
            b: b_norm.iter().map(|v| v * cap).collect(),
            x: x_norm.iter().map(|v| v * cap).collect(),
            throughput: rate_norm * cap,
            iterations: st.t,
            converged,
        }
    }

    /// The minimal broadcast vector that supports flow vector `x` through
    /// constraint (5).
    fn b_from_flows(&self, x: &[f64]) -> Vec<f64> {
        let problem = self.problem;
        let mut b = vec![0.0f64; problem.node_count()];
        for (id, link) in problem.links() {
            b[link.from] = b[link.from].max(x[id.index()] / link.p);
        }
        b
    }

    /// Rescales `b` onto the boundary of the MAC region and returns its
    /// supported rate. The paper generates feasible schedules "by rescaling
    /// the broadcast rate"; scaling *up* to the first binding neighborhood
    /// constraint keeps the optimizer's proportions while leaving no
    /// capacity idle (the LP optimum itself saturates its bottleneck).
    fn rescaled(&self, b: &[f64]) -> (f64, Vec<f64>) {
        let problem = self.problem;
        let mut worst_load = 0.0f64;
        for i in 0..problem.node_count() {
            if i == problem.src() {
                continue;
            }
            let load: f64 = b[i] + problem.neighbors(i).iter().map(|&j| b[j]).sum::<f64>();
            worst_load = worst_load.max(load);
        }
        let scale = if worst_load > 1e-12 {
            1.0 / worst_load
        } else {
            1.0
        };
        let b_norm: Vec<f64> = b.iter().map(|v| (v * scale).clamp(0.0, 1.0)).collect();
        let (rate, _) = flow::supported_rate(problem, &b_norm);
        (rate, b_norm)
    }

    /// The normalized end-to-end rate the current recovered state supports
    /// (best of the two recovery candidates); used by the stopping rule.
    fn supported_rate_of(&self, st: &State) -> f64 {
        let _recovery = self.profiler.span("primal_recovery");
        let (rate_a, _) = self.rescaled(&st.b_avg);
        let (rate_b, _) = self.rescaled(&self.b_from_flows(&st.x_avg));
        rate_a.max(rate_b)
    }

    /// The rates the protocol would deploy if the run stopped now (best
    /// recovery candidate, MAC-rescaled), in absolute units — recorded for
    /// convergence plots.
    fn allocation_preview(&self, st: &State, cap: f64) -> Vec<f64> {
        let (rate_a, b_a) = self.rescaled(&st.b_avg);
        let (rate_b, b_b) = self.rescaled(&self.b_from_flows(&st.x_avg));
        let chosen = if rate_a >= rate_b { b_a } else { b_b };
        chosen.iter().map(|v| v * cap).collect()
    }

    fn link_index(&self, from: usize, to: usize) -> Option<usize> {
        // Linear scan over the transmitter's out-links; instances are sparse.
        self.problem
            .out_links(from)
            .iter()
            .find(|l| self.problem.link(**l).to == to)
            .map(|l| l.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::tests::diamond;
    use crate::lp::solve_exact;

    #[test]
    fn converges_on_the_diamond() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let alloc = RateControl::new(&p).run();
        assert!(
            alloc.converged(),
            "did not converge in {} iterations",
            alloc.iterations()
        );
        assert!(alloc.throughput() > 0.0);
    }

    #[test]
    fn allocation_is_feasible() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let alloc = RateControl::new(&p).run();
        let gamma = alloc.throughput();
        assert_eq!(
            p.feasibility_violation(alloc.broadcast_rates(), alloc.link_rates(), gamma, 1e-6),
            None
        );
    }

    #[test]
    fn recovers_a_large_fraction_of_the_lp_optimum() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let exact = solve_exact(&p).unwrap();
        let alloc = RateControl::new(&p).run();
        let ratio = alloc.throughput() / exact.gamma;
        assert!(
            ratio > 0.8 && ratio <= 1.0 + 1e-9,
            "distributed {} vs LP {} (ratio {ratio})",
            alloc.throughput(),
            exact.gamma
        );
    }

    #[test]
    fn uses_both_diamond_paths() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let alloc = RateControl::new(&p).run();
        let relays_with_flow = (0..p.node_count())
            .filter(|&i| i != p.src() && i != p.dst())
            .filter(|&i| {
                p.in_links(i)
                    .iter()
                    .map(|l| alloc.link_rates()[l.index()])
                    .sum::<f64>()
                    > 1.0
            })
            .count();
        assert_eq!(
            relays_with_flow, 2,
            "rate control should exploit path diversity"
        );
    }

    #[test]
    fn profiled_run_matches_plain_and_records_iteration_spans() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let plain = RateControl::new(&p).run();
        let profiler = telemetry::Profiler::virtual_clock();
        let profiled = RateControl::new(&p).with_profiler(profiler.clone()).run();
        assert_eq!(plain.throughput(), profiled.throughput());
        assert_eq!(plain.iterations(), profiled.iterations());
        let report = profiler.report();
        assert_eq!(report.span("opt.run").map(|s| s.calls), Some(1));
        let iterate = report.span("opt.run;iterate").expect("iterate span");
        assert_eq!(iterate.calls, profiled.iterations() as u64);
        for child in [
            "opt.run;iterate;sub1.shortest_path",
            "opt.run;iterate;sub2.proximal",
            "opt.run;iterate;dual_update",
        ] {
            assert_eq!(report.span(child).map(|s| s.calls), Some(iterate.calls));
        }
        assert!(report.span("opt.run;primal_recovery").is_some());
    }

    #[test]
    fn trace_is_recorded_when_requested() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let (alloc, trace) = RateControl::new(&p).with_trace().run_traced();
        assert_eq!(trace.b_instant.len(), alloc.iterations());
        assert_eq!(trace.b_recovered.len(), alloc.iterations());
        assert!(trace.gamma_step.iter().all(|&g| (0.0..=1e5).contains(&g)));
        // Without tracing nothing is recorded.
        let (_, empty) = RateControl::new(&p).run_traced();
        assert!(empty.b_instant.is_empty());
    }

    #[test]
    fn iteration_records_capture_subgradient_telemetry() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let (alloc, trace) = RateControl::new(&p).with_trace().run_traced();
        assert_eq!(trace.records.len(), alloc.iterations());
        for w in trace.records.windows(2) {
            assert_eq!(w[1].iter, w[0].iter + 1);
            assert!(w[1].step_size <= w[0].step_size, "θ(t) must not increase");
        }
        let last = trace.records.last().unwrap();
        assert!(last.max_violation >= 0.0);
        assert!(last.recovered_rate > 0.0);
        assert!(last.gamma.is_finite() && last.dual_value.is_finite());
        // Serde round-trip through the value model.
        let round = IterationRecord::deserialize(&Serialize::serialize(last)).expect("round-trips");
        assert_eq!(&round, last);
    }

    #[test]
    fn run_best_traced_matches_run_best_and_records_timeline() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let portfolio = default_portfolio();
        let plain = run_best(&p, &portfolio);
        let (traced, trace) = run_best_traced(&p, &portfolio);
        assert_eq!(plain.throughput(), traced.throughput());
        assert_eq!(plain.iterations(), traced.iterations());
        assert_eq!(plain.link_rates(), traced.link_rates());
        assert_eq!(trace.records.len(), traced.iterations());

        let timeline = telemetry::TimeSeries::enabled(8.0, 16);
        trace.record_timeline(&timeline, "s0");
        let report = timeline.snapshot();
        let dual = report.series("s0/opt/dual_value").expect("dual series");
        let violation = report
            .series("s0/opt/max_violation")
            .expect("violation series");
        assert_eq!(dual.total_count(), trace.records.len() as u64);
        assert_eq!(violation.total_count(), trace.records.len() as u64);
        // A disabled recorder is a no-op (and empty prefixes drop the slash).
        trace.record_timeline(&telemetry::TimeSeries::disabled(), "s0");
        let bare = telemetry::TimeSeries::enabled(8.0, 16);
        trace.record_timeline(&bare, "");
        assert!(bare.snapshot().series("opt/dual_value").is_some());
    }

    #[test]
    fn throughput_scales_with_capacity() {
        let (t, sel) = diamond();
        let small = RateControl::new(&SUnicast::from_selection(&t, &sel, 1.0)).run();
        let big = RateControl::new(&SUnicast::from_selection(&t, &sel, 1e4)).run();
        let ratio = big.throughput() / small.throughput();
        assert!((ratio - 1e4).abs() / 1e4 < 1e-6, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "proximal_c must be positive")]
    fn invalid_params_panic() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1.0);
        let params = RateControlParams {
            proximal_c: 0.0,
            ..Default::default()
        };
        let _ = RateControl::with_params(&p, params);
    }

    #[test]
    fn random_instances_track_the_lp_optimum() {
        use net_topo::deploy::Deployment;
        use net_topo::phy::Phy;
        use net_topo::select::select_forwarders;

        // In-range-only topologies: the regime of the paper's Fig. 1 claim.
        // (With the opportunistic tail the LP optimum is inflated by many
        // weak links whose modeled parallel flow the path-based algorithm —
        // and physical reality — cannot fully realize; see EXPERIMENTS.md.)
        let phy = Phy::paper_lossy().with_opportunistic_cutoff(1.0);
        let mut ratios = Vec::new();
        for seed in 0..5 {
            let topo = Deployment::random(30, 6.0, &phy, 100 + seed).into_topology();
            let (s, d) = topo.farthest_pair();
            let sel = select_forwarders(&topo, s, d);
            let p = SUnicast::from_selection(&topo, &sel, 1e5);
            let exact = solve_exact(&p).unwrap();
            let alloc = run_best(&p, &default_portfolio());
            assert_eq!(
                p.feasibility_violation(
                    alloc.broadcast_rates(),
                    alloc.link_rates(),
                    alloc.throughput(),
                    1e-6
                ),
                None,
                "seed {seed}"
            );
            ratios.push(alloc.throughput() / exact.gamma);
        }
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean > 0.6, "mean ratio {mean}, per-seed {ratios:?}");
        assert!(
            ratios.iter().all(|&r| r <= 1.0 + 1e-9),
            "cannot beat the optimum"
        );
    }
}
