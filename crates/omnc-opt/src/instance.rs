//! The sUnicast problem instance (paper eqs. (1)–(5)).

use std::collections::BTreeMap;

use net_topo::graph::{NodeId, Topology};
use net_topo::select::Selection;

/// Index of a directed link within a [`SUnicast`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

/// One directed link of the instance with its reception probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceLink {
    /// Local index of the transmitter.
    pub from: usize,
    /// Local index of the receiver.
    pub to: usize,
    /// One-way reception probability `p_ij`.
    pub p: f64,
}

/// A self-contained sUnicast instance over compact local node indices.
///
/// Nodes of the forwarder selection are re-indexed `0..n` (the mapping back
/// to topology ids is kept); links are the selection's downhill links; the
/// interference neighborhoods come from the *full* topology restricted to
/// selected nodes — two parallel relays compete for the channel even when no
/// information flows between them.
#[derive(Debug, Clone)]
pub struct SUnicast {
    capacity: f64,
    src: usize,
    dst: usize,
    nodes: Vec<NodeId>,
    local: BTreeMap<NodeId, usize>,
    links: Vec<InstanceLink>,
    out: Vec<Vec<LinkId>>,
    inn: Vec<Vec<LinkId>>,
    /// Interference neighborhood per local node (excluding the node itself).
    neighbors: Vec<Vec<usize>>,
}

impl SUnicast {
    /// Builds the instance for a forwarder selection on `topology` with MAC
    /// channel capacity `capacity` (e.g. the paper's 10^5 bytes/second).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive and finite, or if the selection
    /// has no links (cannot happen for selections produced by
    /// [`net_topo::select::select_forwarders`] on connected topologies).
    pub fn from_selection(topology: &Topology, selection: &Selection, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        let nodes: Vec<NodeId> = selection.nodes().to_vec();
        let local: BTreeMap<NodeId, usize> =
            nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut links = Vec::new();
        let mut out = vec![Vec::new(); nodes.len()];
        let mut inn = vec![Vec::new(); nodes.len()];
        for l in selection.subgraph().links() {
            let from = local[&l.from];
            let to = local[&l.to];
            let id = LinkId(links.len());
            links.push(InstanceLink { from, to, p: l.p });
            out[from].push(id);
            inn[to].push(id);
        }
        assert!(!links.is_empty(), "selection has no links");

        let neighbors = nodes
            .iter()
            .map(|&v| {
                topology
                    .neighbors(v)
                    .iter()
                    .filter_map(|w| local.get(w).copied())
                    .collect()
            })
            .collect();

        SUnicast {
            capacity,
            src: local[&selection.src()],
            dst: local[&selection.dst()],
            nodes,
            local,
            links,
            out,
            inn,
            neighbors,
        }
    }

    /// MAC channel capacity `C`.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Local index of the source `S`.
    pub fn src(&self) -> usize {
        self.src
    }

    /// Local index of the destination `T`.
    pub fn dst(&self) -> usize {
        self.dst
    }

    /// Number of nodes in the instance.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The topology-level id of local node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node_id(&self, i: usize) -> NodeId {
        self.nodes[i]
    }

    /// The local index of a topology-level node id, if selected.
    pub fn local_index(&self, v: NodeId) -> Option<usize> {
        self.local.get(&v).copied()
    }

    /// The link with index `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkId) -> InstanceLink {
        self.links[id.0]
    }

    /// All links with their ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, InstanceLink)> + '_ {
        self.links.iter().enumerate().map(|(i, &l)| (LinkId(i), l))
    }

    /// Outgoing links of local node `i`.
    pub fn out_links(&self, i: usize) -> &[LinkId] {
        &self.out[i]
    }

    /// Incoming links of local node `i`.
    pub fn in_links(&self, i: usize) -> &[LinkId] {
        &self.inn[i]
    }

    /// Interference neighborhood of local node `i` (selected nodes within
    /// range, excluding `i`).
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.neighbors[i]
    }

    /// The flow-conservation supply `σ(i)` of eq. (2) for a unit throughput:
    /// `+1` at the source, `-1` at the destination, `0` elsewhere.
    pub fn supply(&self, i: usize) -> f64 {
        if i == self.src {
            1.0
        } else if i == self.dst {
            -1.0
        } else {
            0.0
        }
    }

    /// Checks whether `(b, x, gamma)` (in absolute units) satisfies all
    /// constraints (2)–(5) within tolerance `tol * capacity`. Returns the
    /// first violated constraint description, or `None` if feasible.
    pub fn feasibility_violation(
        &self,
        b: &[f64],
        x: &[f64],
        gamma: f64,
        tol: f64,
    ) -> Option<String> {
        let eps = tol * self.capacity;
        if b.len() != self.node_count() || x.len() != self.link_count() {
            return Some("dimension mismatch".to_owned());
        }
        for (i, &bi) in b.iter().enumerate() {
            if bi < -eps {
                return Some(format!("b[{i}] negative: {bi}"));
            }
        }
        for (e, &xe) in x.iter().enumerate() {
            if xe < -eps {
                return Some(format!("x[{e}] negative: {xe}"));
            }
        }
        // (2) flow conservation.
        for i in 0..self.node_count() {
            let outflow: f64 = self.out[i].iter().map(|l| x[l.0]).sum();
            let inflow: f64 = self.inn[i].iter().map(|l| x[l.0]).sum();
            let want = self.supply(i) * gamma;
            if (outflow - inflow - want).abs() > eps {
                return Some(format!(
                    "flow conservation at node {i}: out {outflow} - in {inflow} != {want}"
                ));
            }
        }
        // (4) broadcast MAC.
        for i in 0..self.node_count() {
            if i == self.src {
                continue;
            }
            let load: f64 = b[i] + self.neighbors[i].iter().map(|&j| b[j]).sum::<f64>();
            if load > self.capacity + eps {
                return Some(format!("MAC constraint at node {i}: load {load}"));
            }
        }
        // (5) loss coupling.
        for (e, link) in self.links.iter().enumerate() {
            if b[link.from] * link.p < x[e] - eps {
                return Some(format!(
                    "coupling on link {e}: b*p = {} < x = {}",
                    b[link.from] * link.p,
                    x[e]
                ));
            }
        }
        None
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use net_topo::graph::Link;
    use net_topo::select::select_forwarders;

    pub(crate) fn diamond() -> (Topology, Selection) {
        let t = Topology::from_links(
            4,
            vec![
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(1),
                    p: 0.6,
                },
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(2),
                    p: 0.6,
                },
                Link {
                    from: NodeId::new(1),
                    to: NodeId::new(3),
                    p: 0.6,
                },
                Link {
                    from: NodeId::new(2),
                    to: NodeId::new(3),
                    p: 0.6,
                },
            ],
        )
        .unwrap();
        let sel = select_forwarders(&t, NodeId::new(0), NodeId::new(3));
        (t, sel)
    }

    #[test]
    fn instance_reflects_selection() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.link_count(), 4);
        assert_ne!(p.src(), p.dst());
        assert_eq!(p.capacity(), 1e5);
        assert_eq!(p.out_links(p.src()).len(), 2);
        assert_eq!(p.in_links(p.dst()).len(), 2);
        assert_eq!(p.supply(p.src()), 1.0);
        assert_eq!(p.supply(p.dst()), -1.0);
    }

    #[test]
    fn local_index_roundtrip() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        for i in 0..p.node_count() {
            assert_eq!(p.local_index(p.node_id(i)), Some(i));
        }
        assert_eq!(p.local_index(NodeId::new(99)), None);
    }

    #[test]
    fn interference_includes_non_flow_neighbors() {
        // Relays 1 and 2 share links with 0 and 3 but not with each other in
        // the diamond; add a direct 1–2 link pair to the topology and verify
        // it shows up as interference even though it is not downhill.
        let t = Topology::from_links(
            4,
            vec![
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(1),
                    p: 0.6,
                },
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(2),
                    p: 0.6,
                },
                Link {
                    from: NodeId::new(1),
                    to: NodeId::new(3),
                    p: 0.6,
                },
                Link {
                    from: NodeId::new(2),
                    to: NodeId::new(3),
                    p: 0.6,
                },
                Link {
                    from: NodeId::new(1),
                    to: NodeId::new(2),
                    p: 0.9,
                },
                Link {
                    from: NodeId::new(2),
                    to: NodeId::new(1),
                    p: 0.9,
                },
            ],
        )
        .unwrap();
        let sel = select_forwarders(&t, NodeId::new(0), NodeId::new(3));
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let l1 = p.local_index(NodeId::new(1)).unwrap();
        let l2 = p.local_index(NodeId::new(2)).unwrap();
        assert!(p.neighbors(l1).contains(&l2), "1 must interfere with 2");
        // ... but no *flow* link exists between them (equal distance).
        assert!(p
            .links()
            .all(|(_, l)| !((l.from == l1 && l.to == l2) || (l.from == l2 && l.to == l1))));
    }

    #[test]
    fn feasibility_checker_accepts_zero_and_rejects_violations() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let b = vec![0.0; p.node_count()];
        let x = vec![0.0; p.link_count()];
        assert_eq!(p.feasibility_violation(&b, &x, 0.0, 1e-9), None);

        // Unsupported flow: x > 0 with b = 0 breaks coupling (5).
        let mut x_bad = x.clone();
        x_bad[0] = 1.0;
        assert!(p.feasibility_violation(&b, &x_bad, 0.0, 1e-9).is_some());

        // Capacity violation at a receiver.
        let b_bad = vec![1e6; p.node_count()];
        assert!(p
            .feasibility_violation(&b_bad, &x, 0.0, 1e-9)
            .unwrap()
            .contains("MAC"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn invalid_capacity_panics() {
        let (t, sel) = diamond();
        let _ = SUnicast::from_selection(&t, &sel, 0.0);
    }
}
