//! The sUnicast optimization framework and distributed rate-control
//! algorithm of OMNC (Zhang & Li, ICDCS 2008, Secs. 3.2–3.3).
//!
//! OMNC's key contribution is a *jointly optimized* multipath routing and
//! rate-control scheme. The throughput-maximization problem (the paper's
//! **sUnicast**, eqs. (1)–(5)) couples three ingredients:
//!
//! * a **flow model** over the forwarder DAG (flow conservation, eq. (2)),
//! * a **broadcast MAC model** (eq. (4)): a node and all transmitters within
//!   range of it share the channel capacity `C`,
//! * a **loss coupling** (eq. (5)): the broadcast rate of `i` must support
//!   the information rate on each outgoing link even under losses,
//!   `b_i · p_ij ≥ x_ij`.
//!
//! This crate provides:
//!
//! * [`SUnicast`] — the problem instance, built from a forwarder selection;
//! * [`lp`] — the exact LP solution via the `omnc-simplex-lp` substrate,
//!   used as the reference optimum;
//! * [`RateControl`] — the centralized driver of the paper's Table 1
//!   algorithm (Lagrangian decomposition, subgradient updates with
//!   diminishing step sizes, proximal regularization and primal recovery);
//! * [`distributed`] — the same algorithm realized as per-node state
//!   machines exchanging messages with neighbors only, demonstrating that
//!   every update in Table 1 is local;
//! * [`flow`] — a max-flow helper that converts a broadcast-rate vector
//!   into the end-to-end information rate it can support.
//!
//! # Examples
//!
//! ```
//! use net_topo::{graph::{Link, NodeId, Topology}, select::select_forwarders};
//! use omnc_opt::{RateControl, SUnicast};
//!
//! // The two-relay diamond from the paper's Sec. 3.2 discussion.
//! let t = Topology::from_links(4, vec![
//!     Link { from: NodeId::new(0), to: NodeId::new(1), p: 0.6 },
//!     Link { from: NodeId::new(0), to: NodeId::new(2), p: 0.6 },
//!     Link { from: NodeId::new(1), to: NodeId::new(3), p: 0.6 },
//!     Link { from: NodeId::new(2), to: NodeId::new(3), p: 0.6 },
//! ])?;
//! let sel = select_forwarders(&t, NodeId::new(0), NodeId::new(3));
//! let problem = SUnicast::from_selection(&t, &sel, 1e5);
//! let allocation = RateControl::new(&problem).run();
//! assert!(allocation.throughput() > 0.0);
//! # Ok::<(), net_topo::TopoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
pub mod diagnostics;
pub mod distributed;
mod error;
pub mod flow;
mod instance;
pub mod lp;
pub mod municast;
mod step;

pub use algorithm::{
    default_portfolio, run_best, run_best_traced, IterationRecord, RateAllocation, RateControl,
    RateControlParams, Recovery, Trace,
};
pub use error::OptError;
pub use instance::{LinkId, SUnicast};
pub use step::StepSize;
