//! Message-passing realization of the Table 1 algorithm.
//!
//! The paper stresses that every step of the rate-control algorithm is
//! local: "beside the shortest path algorithm, the only step that needs
//! message passing is in equation (15) and (17), where each node sends its
//! rate and congestion price to its neighbors" (Sec. 5). This module makes
//! that claim executable: each [`NodeAgent`] owns only its local state
//! (multipliers of its outgoing links, its congestion price, its broadcast
//! rate) and exchanges typed messages with neighbors through an in-memory
//! network; the shortest path of SUB1 runs as distributed Bellman-Ford.
//!
//! The test-suite verifies that the resulting allocation matches the
//! centralized [`crate::RateControl`] driver.

use crate::flow;
use crate::instance::SUnicast;
use crate::step::StepSize;
use crate::RateControlParams;

/// A message exchanged between neighboring agents.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Bellman-Ford relaxation: sender's current cost-to-destination under
    /// the λ link costs, flooded each routing round.
    CostToDst {
        /// Sending node (local index).
        from: usize,
        /// Sender's estimated cost to the destination.
        cost: f64,
    },
    /// SUB2 exchange (eqs. (15)/(17)): the sender's congestion price and
    /// broadcast rate, delivered to every neighbor.
    PriceAndRate {
        /// Sending node (local index).
        from: usize,
        /// Congestion price β of the sender.
        beta: f64,
        /// Broadcast rate b of the sender (capacity-normalized).
        b: f64,
    },
    /// Flow assignment for this iteration: `γ_t` pushed hop-by-hop along the
    /// shortest path (each relay knows its next hop from Bellman-Ford).
    Flow {
        /// Amount of flow assigned to the link from the receiving node's
        /// predecessor.
        gamma: f64,
    },
}

/// Per-node agent state; everything a real OMNC node would keep.
#[derive(Debug, Clone)]
pub struct NodeAgent {
    id: usize,
    /// λ of each *outgoing* link, indexed like the instance's out-link list.
    lambda_out: Vec<f64>,
    beta: f64,
    b: f64,
    b_avg: f64,
    /// Flow assigned on each outgoing link this iteration.
    x_out: Vec<f64>,
    /// Primal-recovered flow per outgoing link.
    x_avg_out: Vec<f64>,
    /// Latest β/b heard from each neighbor (by local node index).
    neighbor_beta: Vec<f64>,
    neighbor_b: Vec<f64>,
    /// Bellman-Ford state: cost to destination and chosen next hop.
    cost_to_dst: f64,
    next_hop: Option<usize>,
}

impl NodeAgent {
    /// The node's current (normalized) broadcast rate.
    pub fn broadcast_rate(&self) -> f64 {
        self.b
    }

    /// The node's congestion price β.
    pub fn congestion_price(&self) -> f64 {
        self.beta
    }
}

/// Synchronous distributed execution of the rate-control algorithm.
///
/// One [`DistributedRateControl::iterate`] call performs the routing rounds,
/// the SUB1/SUB2 updates and the λ update, delivering all messages through
/// the message channel — no agent ever reads another agent's state
/// directly.
#[derive(Debug, Clone)]
pub struct DistributedRateControl<'a> {
    problem: &'a SUnicast,
    step: StepSize,
    proximal_c: f64,
    utility_weight: f64,
    agents: Vec<NodeAgent>,
    t: usize,
    /// Start of the current primal-recovery tail window (mirrors the
    /// centralized driver's restart-on-doubling averaging).
    window_start: usize,
    /// Total messages delivered, for the locality accounting reported by the
    /// paper (Sec. 5).
    messages_sent: u64,
}

impl<'a> DistributedRateControl<'a> {
    /// Initializes all agents (Table 1, step 1).
    pub fn new(problem: &'a SUnicast, params: &RateControlParams) -> Self {
        let n = problem.node_count();
        // Informed dual initialization mirroring the centralized driver:
        // λ proportional to the ETX link cost (each node knows its own
        // outgoing link qualities and the flooded ETX distance).
        let scaffold_cost = {
            // ETX best-path cost via local Bellman-Ford-equivalent: reuse
            // the instance links directly.
            let mut dist = vec![f64::INFINITY; n];
            dist[problem.dst()] = 0.0;
            for _ in 0..n {
                let mut changed = false;
                for u in 0..n {
                    for l in problem.out_links(u) {
                        let link = problem.link(*l);
                        let cand = dist[link.to] + 1.0 / link.p;
                        if cand < dist[u] {
                            dist[u] = cand;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            dist[problem.src()].max(1e-9)
        };
        let agents = (0..n)
            .map(|i| NodeAgent {
                id: i,
                lambda_out: problem
                    .out_links(i)
                    .iter()
                    .map(|l| params.utility_weight / (problem.link(*l).p * scaffold_cost))
                    .collect(),
                beta: 0.0,
                b: 0.05,
                b_avg: 0.0,
                x_out: vec![0.0; problem.out_links(i).len()],
                x_avg_out: vec![0.0; problem.out_links(i).len()],
                neighbor_beta: vec![0.0; n],
                neighbor_b: vec![0.0; n],
                cost_to_dst: f64::INFINITY,
                next_hop: None,
            })
            .collect();
        DistributedRateControl {
            problem,
            step: params.step,
            proximal_c: params.proximal_c,
            utility_weight: params.utility_weight,
            agents,
            t: 0,
            window_start: 1,
            messages_sent: 0,
        }
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> usize {
        self.t
    }

    /// Messages delivered so far (every message crosses exactly one link).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Read-only access to an agent.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn agent(&self, i: usize) -> &NodeAgent {
        &self.agents[i]
    }

    /// Executes one synchronous iteration of Table 1 via message passing.
    pub fn iterate(&mut self) {
        self.t += 1;
        let theta = self.step.at(self.t);
        let problem = self.problem;
        let n = problem.node_count();

        // ---- SUB1 routing: distributed Bellman-Ford on λ costs.
        for a in &mut self.agents {
            a.cost_to_dst = f64::INFINITY;
            a.next_hop = None;
        }
        self.agents[problem.dst()].cost_to_dst = 0.0;
        // n rounds suffice for any path length; each round every node
        // announces its cost and receivers relax their outgoing links.
        for _ in 0..n {
            // Collect announcements (the message batch of this round).
            let announcements: Vec<Message> = self
                .agents
                .iter()
                .filter(|a| a.cost_to_dst.is_finite())
                .map(|a| Message::CostToDst {
                    from: a.id,
                    cost: a.cost_to_dst,
                })
                .collect();
            let mut changed = false;
            for msg in announcements {
                let Message::CostToDst { from, cost } = msg else {
                    unreachable!()
                };
                // Deliver to every upstream neighbor u with a link u → from.
                for u in 0..n {
                    if let Some(slot) = problem
                        .out_links(u)
                        .iter()
                        .position(|l| problem.link(*l).to == from)
                    {
                        self.messages_sent += 1;
                        let lambda = self.agents[u].lambda_out[slot];
                        let candidate = cost + lambda;
                        // Deterministic tie-break on next-hop index keeps the
                        // run reproducible.
                        let agent = &mut self.agents[u];
                        if candidate < agent.cost_to_dst - 1e-15
                            || (candidate <= agent.cost_to_dst + 1e-15
                                && agent.next_hop.is_some_and(|h| from < h))
                        {
                            agent.cost_to_dst = candidate;
                            agent.next_hop = Some(from);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Source computes γ_t = U'⁻¹(p_min) and pushes Flow messages along
        // next-hop pointers.
        for a in &mut self.agents {
            a.x_out.iter_mut().for_each(|x| *x = 0.0);
        }
        let p_min = self.agents[problem.src()].cost_to_dst;
        let gamma_t = if !p_min.is_finite() {
            0.0
        } else if p_min <= 1e-12 {
            1.0
        } else {
            (self.utility_weight / p_min).min(1.0)
        };
        if gamma_t > 0.0 {
            let mut cur = problem.src();
            while cur != problem.dst() {
                let next = self.agents[cur]
                    .next_hop
                    .expect("finite cost implies next hop");
                let slot = problem
                    .out_links(cur)
                    .iter()
                    .position(|l| problem.link(*l).to == next)
                    .expect("next hop is an out-neighbor");
                self.agents[cur].x_out[slot] = gamma_t;
                self.messages_sent += 1; // the Flow message crossing the link
                let _ = Message::Flow { gamma: gamma_t };
                cur = next;
            }
        }

        // ---- SUB2: exchange β/b with neighbors, then local updates.
        let batch: Vec<Message> = self
            .agents
            .iter()
            .map(|a| Message::PriceAndRate {
                from: a.id,
                beta: a.beta,
                b: a.b,
            })
            .collect();
        for msg in &batch {
            let Message::PriceAndRate { from, beta, b } = msg else {
                unreachable!()
            };
            for &j in problem.neighbors(*from) {
                self.messages_sent += 1;
                self.agents[j].neighbor_beta[*from] = *beta;
                self.agents[j].neighbor_b[*from] = *b;
            }
        }
        for i in 0..n {
            // w_i = Σ λ_ij p_ij over the node's own outgoing links.
            let w: f64 = problem
                .out_links(i)
                .iter()
                .enumerate()
                .map(|(slot, l)| self.agents[i].lambda_out[slot] * problem.link(*l).p)
                .sum();
            let price: f64 = self.agents[i].beta
                + problem
                    .neighbors(i)
                    .iter()
                    .map(|&j| self.agents[i].neighbor_beta[j])
                    .sum::<f64>();
            let a = &mut self.agents[i];
            a.b = (a.b + (w - price) / (2.0 * self.proximal_c)).clamp(0.0, 1.0);
        }
        // β update needs the *new* b of neighbors: second exchange round.
        let batch: Vec<(usize, f64)> = self.agents.iter().map(|a| (a.id, a.b)).collect();
        for (from, b) in &batch {
            for &j in problem.neighbors(*from) {
                self.messages_sent += 1;
                self.agents[j].neighbor_b[*from] = *b;
            }
        }
        for i in 0..n {
            if i == problem.src() {
                continue;
            }
            let load: f64 = self.agents[i].b
                + problem
                    .neighbors(i)
                    .iter()
                    .map(|&j| self.agents[i].neighbor_b[j])
                    .sum::<f64>();
            let a = &mut self.agents[i];
            a.beta = (a.beta + theta * (load - 1.0)).max(0.0);
        }
        // Primal recovery over the tail window (restart on doubling, as in
        // the centralized driver).
        if self.t >= 2 * self.window_start && self.t > 4 {
            self.window_start = self.t;
        }
        let span = (self.t - self.window_start + 1) as f64;
        for a in &mut self.agents {
            a.b_avg += (a.b - a.b_avg) / span;
            for slot in 0..a.x_out.len() {
                a.x_avg_out[slot] += (a.x_out[slot] - a.x_avg_out[slot]) / span;
            }
        }

        // ---- λ update, purely local: transmitter i knows b_i, p_ij, x_ij.
        for i in 0..n {
            let a = &mut self.agents[i];
            for (slot, l) in problem.out_links(i).iter().enumerate() {
                let slack = a.b * problem.link(*l).p - a.x_out[slot];
                a.lambda_out[slot] = (a.lambda_out[slot] - theta * slack).max(0.0);
            }
        }
    }

    /// Runs `iterations` synchronous rounds.
    pub fn run(&mut self, iterations: usize) {
        for _ in 0..iterations {
            self.iterate();
        }
    }

    /// The recovered (normalized) broadcast vector.
    pub fn recovered_b(&self) -> Vec<f64> {
        self.agents.iter().map(|a| a.b_avg).collect()
    }

    /// The recovered (normalized) flow vector, indexed by instance link.
    pub fn recovered_x(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.problem.link_count()];
        for (i, a) in self.agents.iter().enumerate() {
            for (slot, l) in self.problem.out_links(i).iter().enumerate() {
                x[l.index()] = a.x_avg_out[slot];
            }
        }
        x
    }

    /// Converts the recovered state into an absolute feasible allocation
    /// exactly like the centralized driver: both recovery candidates (the
    /// averaged `b̄` and the broadcast vector implied by the averaged flows
    /// `x̄`), MAC rescale, max flow, best candidate wins.
    pub fn allocation(&self) -> crate::RateAllocation {
        let problem = self.problem;
        let rescale = |b: &[f64]| -> (f64, Vec<f64>) {
            let mut worst = 0.0f64;
            for i in 0..problem.node_count() {
                if i == problem.src() {
                    continue;
                }
                let load: f64 = b[i] + problem.neighbors(i).iter().map(|&j| b[j]).sum::<f64>();
                worst = worst.max(load);
            }
            let scale = if worst > 1e-12 { 1.0 / worst } else { 1.0 };
            let b_norm: Vec<f64> = b.iter().map(|v| (v * scale).clamp(0.0, 1.0)).collect();
            let (rate, _) = flow::supported_rate(problem, &b_norm);
            (rate, b_norm)
        };
        let x_avg = self.recovered_x();
        let mut b_flows = vec![0.0f64; problem.node_count()];
        for (id, link) in problem.links() {
            b_flows[link.from] = b_flows[link.from].max(x_avg[id.index()] / link.p);
        }
        let (rate_a, b_a) = rescale(&self.recovered_b());
        let (rate_b, b_b) = rescale(&b_flows);
        let (rate, b_norm) = if rate_a >= rate_b {
            (rate_a, b_a)
        } else {
            (rate_b, b_b)
        };
        let (_, x) = flow::supported_rate(problem, &b_norm);
        let cap = problem.capacity();
        crate::RateAllocation::from_parts(
            b_norm.iter().map(|v| v * cap).collect(),
            x.iter().map(|v| v * cap).collect(),
            rate * cap,
            self.t,
            true,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::tests::diamond;
    use crate::{RateControl, RateControlParams};

    #[test]
    fn distributed_matches_centralized_throughput() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let params = RateControlParams::default();
        let central = RateControl::with_params(&p, params).run();

        let mut dist = DistributedRateControl::new(&p, &params);
        dist.run(central.iterations());
        let d_alloc = dist.allocation();

        let rel =
            (d_alloc.throughput() - central.throughput()).abs() / central.throughput().max(1e-9);
        assert!(
            rel < 0.05,
            "distributed {} vs centralized {}",
            d_alloc.throughput(),
            central.throughput()
        );
    }

    #[test]
    fn message_complexity_is_local() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let params = RateControlParams::default();
        let mut dist = DistributedRateControl::new(&p, &params);
        dist.run(10);
        // Per iteration: ≤ n rounds × |E| Bellman-Ford messages + 2
        // neighbor exchanges (≤ 2·Σ|N(i)|) + ≤ n flow messages.
        let n = p.node_count() as u64;
        let e = p.link_count() as u64;
        let neigh: u64 = (0..p.node_count())
            .map(|i| p.neighbors(i).len() as u64)
            .sum();
        let bound = 10 * (n * e + 2 * neigh + n);
        assert!(
            dist.messages_sent() <= bound,
            "{} > {bound}",
            dist.messages_sent()
        );
        assert!(dist.messages_sent() > 0);
    }

    #[test]
    fn agents_allocate_positive_rates_to_useful_relays() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let params = RateControlParams::default();
        let mut dist = DistributedRateControl::new(&p, &params);
        dist.run(200);
        // The source must transmit.
        assert!(dist.agent(p.src()).broadcast_rate() > 0.0);
        // Recovered allocation supports positive end-to-end rate.
        assert!(dist.allocation().throughput() > 0.0);
    }

    #[test]
    fn congestion_prices_rise_under_overload() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let params = RateControlParams::default();
        let mut dist = DistributedRateControl::new(&p, &params);
        // Force overload: set every b to capacity via many iterations with a
        // large utility weight (the λ growth pushes b up).
        dist.run(50);
        let any_price = (0..p.node_count()).any(|i| dist.agent(i).congestion_price() > 0.0);
        assert!(any_price, "no congestion price ever charged");
    }
}
