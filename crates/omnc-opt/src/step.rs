//! Subgradient step-size schedules.

use serde::{Deserialize, Serialize};

/// Step-size schedule `θ(t)` for the subgradient updates (8) and (15).
///
/// The paper adopts diminishing step sizes `θ(t) = A / (B + C·t)`, "which
/// guarantee convergence regardless of the initial value of λ", with the
/// Fig. 1 experiment using `A = 1, B = 0.5, C = 10`. A constant schedule is
/// provided for the ablation benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StepSize {
    /// `θ(t) = a / (b + c·t)` — converges for any initialization.
    Diminishing {
        /// Numerator `A`.
        a: f64,
        /// Offset `B`.
        b: f64,
        /// Slope `C`.
        c: f64,
    },
    /// `θ(t) = v` — may oscillate; used by the step-size ablation.
    Constant(f64),
}

impl StepSize {
    /// The paper's Fig. 1 schedule: `A = 1, B = 0.5, C = 10`.
    pub const PAPER: StepSize = StepSize::Diminishing {
        a: 1.0,
        b: 0.5,
        c: 10.0,
    };

    /// Evaluates `θ(t)` for the 1-based iteration index `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is zero (iterations are 1-based in the paper).
    pub fn at(self, t: usize) -> f64 {
        assert!(t >= 1, "iterations are 1-based");
        match self {
            StepSize::Diminishing { a, b, c } => a / (b + c * t as f64),
            StepSize::Constant(v) => v,
        }
    }
}

impl Default for StepSize {
    fn default() -> Self {
        StepSize::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_values() {
        let s = StepSize::PAPER;
        assert!((s.at(1) - 1.0 / 10.5).abs() < 1e-12);
        assert!((s.at(10) - 1.0 / 100.5).abs() < 1e-12);
    }

    #[test]
    fn diminishing_is_decreasing_and_summable_harmonically() {
        let s = StepSize::PAPER;
        let mut prev = f64::INFINITY;
        for t in 1..100 {
            let v = s.at(t);
            assert!(v < prev && v > 0.0);
            prev = v;
        }
    }

    #[test]
    fn constant_stays_constant() {
        let s = StepSize::Constant(0.05);
        assert_eq!(s.at(1), 0.05);
        assert_eq!(s.at(1000), 0.05);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_iteration_panics() {
        let _ = StepSize::PAPER.at(0);
    }
}
