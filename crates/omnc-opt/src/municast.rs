//! Multiple-unicast extension of the sUnicast framework.
//!
//! The paper closes with: "As the rate control framework can be flexibly
//! extended to other scenarios such as the multiple-unicast case, we
//! believe OMNC marks an important step towards optimization based protocol
//! design". This module is that extension: `K` concurrent unicast sessions
//! share the channel; every node gets a *per-session* broadcast rate
//! `b_i^k`, and the MAC constraint (4) couples the session totals —
//!
//! ```text
//!   Σ_k b_i^k  +  Σ_{j ∈ N(i)}  Σ_k b_j^k   ≤   C      ∀ i ∉ sources
//! ```
//!
//! while flow conservation (2) and the loss coupling (5) hold per session.
//! The objective maximizes the sum of session throughputs (optionally
//! weighted), and the same Lagrangian machinery applies: per-session λ and
//! SUB1 shortest paths, *shared* congestion prices β coordinating SUB2
//! across sessions.

use net_topo::graph::{NodeId, Topology};
use net_topo::select::Selection;
use simplex_lp::{LpProblem, Relation};

use crate::error::OptError;
use crate::instance::SUnicast;
use crate::step::StepSize;
use crate::RateControlParams;

/// A multiple-unicast problem: per-session instances over a common
/// topology, coupled through the shared interference neighborhoods.
#[derive(Debug, Clone)]
pub struct MUnicast {
    capacity: f64,
    sessions: Vec<SUnicast>,
    /// Global node count of the underlying topology.
    nodes: usize,
    /// Interference neighborhoods over *global* node ids.
    neighbors: Vec<Vec<usize>>,
    /// Global ids of nodes that act as a source in at least one session
    /// (the MAC rows are per receiver, i.e. every other participating node).
    source_ids: Vec<usize>,
}

/// The exact LP optimum of a multi-unicast instance.
#[derive(Debug, Clone, PartialEq)]
pub struct MUnicastSolution {
    /// Per-session throughputs γ_k.
    pub gamma: Vec<f64>,
    /// Per-session broadcast rates, indexed `[session][instance-local node]`.
    pub b: Vec<Vec<f64>>,
}

impl MUnicast {
    /// Builds the coupled problem from per-session forwarder selections on
    /// the same topology.
    ///
    /// # Panics
    ///
    /// Panics if `selections` is empty or `capacity` is not positive.
    pub fn from_selections(topology: &Topology, selections: &[Selection], capacity: f64) -> Self {
        assert!(!selections.is_empty(), "at least one session is required");
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        let sessions: Vec<SUnicast> = selections
            .iter()
            .map(|sel| SUnicast::from_selection(topology, sel, capacity))
            .collect();
        let neighbors = topology
            .nodes()
            .map(|v| topology.neighbors(v).iter().map(|w| w.index()).collect())
            .collect();
        let source_ids = selections.iter().map(|sel| sel.src().index()).collect();
        MUnicast {
            capacity,
            sessions,
            nodes: topology.len(),
            neighbors,
            source_ids,
        }
    }

    /// The shared channel capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The per-session sUnicast instances.
    pub fn sessions(&self) -> &[SUnicast] {
        &self.sessions
    }

    /// Number of sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Solves the coupled LP exactly: `max Σ_k γ_k` under per-session flow
    /// conservation and loss coupling, and the *shared* MAC constraint.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::LpFailed`] if the solver fails (cannot happen
    /// for valid selections: all-zero rates are feasible).
    pub fn solve_exact(&self) -> Result<MUnicastSolution, OptError> {
        // Variable layout: for each session k: γ_k, x^k_e (m_k), b^k_i (n_k).
        let mut offsets = Vec::with_capacity(self.sessions.len());
        let mut total = 0usize;
        for s in &self.sessions {
            offsets.push(total);
            total += 1 + s.link_count() + s.node_count();
        }
        let var_gamma = |k: usize| offsets[k];
        let var_x = |k: usize, e: usize| offsets[k] + 1 + e;
        let var_b = |k: usize, i: usize| offsets[k] + 1 + self.sessions[k].link_count() + i;

        let mut lp = LpProblem::maximize(total);
        for k in 0..self.sessions.len() {
            lp.set_objective_coeff(var_gamma(k), 1.0);
        }

        for (k, s) in self.sessions.iter().enumerate() {
            // Flow conservation per session.
            for i in 0..s.node_count() {
                let mut coeffs: Vec<(usize, f64)> = Vec::new();
                for l in s.out_links(i) {
                    coeffs.push((var_x(k, l.index()), 1.0));
                }
                for l in s.in_links(i) {
                    coeffs.push((var_x(k, l.index()), -1.0));
                }
                coeffs.push((var_gamma(k), -s.supply(i)));
                lp.push_constraint(&coeffs, Relation::Eq, 0.0);
            }
            // Loss coupling per session.
            for (id, link) in s.links() {
                lp.push_constraint(
                    &[(var_x(k, id.index()), 1.0), (var_b(k, link.from), -link.p)],
                    Relation::Le,
                    0.0,
                );
            }
            // Bounds.
            for i in 0..s.node_count() {
                lp.push_upper_bound(var_b(k, i), self.capacity);
            }
        }

        // Shared MAC rows over global node ids: for every global node g that
        // participates anywhere (and is not a pure source of every session
        // it serves), the summed session rates in N(g) ∪ {g} fit in C.
        for g in 0..self.nodes {
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            for (k, s) in self.sessions.iter().enumerate() {
                let mut add = |global: usize| {
                    if let Some(local) = s.local_index(NodeId::new(global)) {
                        coeffs.push((var_b(k, local), 1.0));
                    }
                };
                add(g);
                for &nb in &self.neighbors[g] {
                    add(nb);
                }
            }
            // Skip rows for nodes that hear nobody, and for pure sources
            // (eq. (4) constrains receivers; a source that also relays or
            // receives for another session still gets its row).
            let is_pure_source = self.source_ids.contains(&g)
                && self.sessions.iter().all(|s| {
                    s.local_index(NodeId::new(g))
                        .is_none_or(|local| local == s.src())
                });
            if coeffs.is_empty() || is_pure_source {
                continue;
            }
            lp.push_constraint(&coeffs, Relation::Le, self.capacity);
        }

        let sol = lp.solve().map_err(|e| OptError::LpFailed(e.to_string()))?;
        Ok(MUnicastSolution {
            gamma: (0..self.sessions.len())
                .map(|k| sol.value(var_gamma(k)))
                .collect(),
            b: self
                .sessions
                .iter()
                .enumerate()
                .map(|(k, s)| {
                    (0..s.node_count())
                        .map(|i| sol.value(var_b(k, i)))
                        .collect()
                })
                .collect(),
        })
    }

    /// Distributed solution: the Table 1 machinery extended with *shared*
    /// congestion prices. Each iteration runs SUB1 per session (shortest
    /// path under the session's λ), then a joint SUB2 where every node's
    /// price reflects the summed load of all sessions. Returns per-session
    /// feasible broadcast vectors (instance-local indexing) and the
    /// supported throughputs.
    pub fn solve_distributed(&self, params: &RateControlParams) -> MUnicastSolution {
        let k_count = self.sessions.len();
        // Per-session state mirrors the single-session driver.
        struct S {
            lambda: Vec<f64>,
            b: Vec<f64>,
            b_avg: Vec<f64>,
            x_avg: Vec<f64>,
        }
        let mut st: Vec<S> = self
            .sessions
            .iter()
            .map(|s| {
                // Informed dual initialization, as in the single-session
                // driver: λ ∝ ETX link cost, normalized by the best-path
                // ETX so the initial shortest-path cost is ~utility_weight.
                let mut dist = vec![f64::INFINITY; s.node_count()];
                dist[s.dst()] = 0.0;
                for _ in 0..s.node_count() {
                    let mut changed = false;
                    for u in 0..s.node_count() {
                        for l in s.out_links(u) {
                            let link = s.link(*l);
                            let cand = dist[link.to] + 1.0 / link.p;
                            if cand < dist[u] {
                                dist[u] = cand;
                                changed = true;
                            }
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                let etx_best = dist[s.src()].max(1e-9);
                S {
                    lambda: s
                        .links()
                        .map(|(_, l)| params.utility_weight / (l.p * etx_best))
                        .collect(),
                    b: vec![0.05; s.node_count()],
                    b_avg: vec![0.0; s.node_count()],
                    x_avg: vec![0.0; s.link_count()],
                }
            })
            .collect();
        // Shared congestion prices over *global* node ids.
        let mut beta = vec![0.0f64; self.nodes];
        let mut window_start = 1usize;

        let scaffolds: Vec<Topology> = self
            .sessions
            .iter()
            .map(|s| {
                let links = s
                    .links()
                    .map(|(_, l)| net_topo::graph::Link {
                        from: NodeId::new(l.from),
                        to: NodeId::new(l.to),
                        p: l.p,
                    })
                    .collect();
                Topology::from_links(s.node_count().max(2), links)
                    .expect("instance links form a valid graph")
            })
            .collect();

        for t in 1..=params.max_iterations {
            let theta = match params.step {
                StepSize::Diminishing { a, b, c } => a / (b + c * t as f64),
                StepSize::Constant(v) => v,
            };
            if t >= 2 * window_start && t > 4 {
                window_start = t;
            }
            let span = (t - window_start + 1) as f64;

            // Global load per node accumulates across sessions this round.
            let mut load = vec![0.0f64; self.nodes];

            for (k, s) in self.sessions.iter().enumerate() {
                // SUB1 for session k.
                let lambda = &st[k].lambda;
                let sp =
                    net_topo::dijkstra::shortest_paths(&scaffolds[k], NodeId::new(s.src()), |l| {
                        s.out_links(l.from.index())
                            .iter()
                            .find(|id| s.link(**id).to == l.to.index())
                            .map(|id| lambda[id.index()])
                            .unwrap_or(f64::INFINITY)
                    });
                let mut x_step = vec![0.0; s.link_count()];
                if let Some(path) = sp.path_to(NodeId::new(s.dst())) {
                    let p_min = sp.cost(NodeId::new(s.dst())).expect("path exists");
                    let gamma_t = if p_min <= 1e-12 {
                        1.0
                    } else {
                        (params.utility_weight / p_min).min(1.0)
                    };
                    for w in path.windows(2) {
                        let e = s
                            .out_links(w[0].index())
                            .iter()
                            .find(|id| s.link(**id).to == w[1].index())
                            .expect("path follows links")
                            .index();
                        x_step[e] = gamma_t;
                    }
                }
                for (avg, inst) in st[k].x_avg.iter_mut().zip(&x_step) {
                    *avg += (inst - *avg) / span;
                }

                // SUB2 primal update with *shared* prices.
                let mut w_i = vec![0.0; s.node_count()];
                for (id, link) in s.links() {
                    w_i[link.from] += st[k].lambda[id.index()] * link.p;
                }
                #[allow(clippy::needless_range_loop)] // i indexes three arrays
                for i in 0..s.node_count() {
                    let g = s.node_id(i).index();
                    let price: f64 =
                        beta[g] + self.neighbors[g].iter().map(|&nb| beta[nb]).sum::<f64>();
                    st[k].b[i] =
                        (st[k].b[i] + (w_i[i] - price) / (2.0 * params.proximal_c)).clamp(0.0, 1.0);
                }
                for (avg, inst) in {
                    let S { b_avg, b, .. } = &mut st[k];
                    b_avg.iter_mut().zip(b.iter())
                } {
                    *avg += (inst - *avg) / span;
                }
                // λ update.
                for (id, link) in s.links() {
                    let slack = st[k].b[link.from] * link.p - x_step[id.index()];
                    st[k].lambda[id.index()] = (st[k].lambda[id.index()] - theta * slack).max(0.0);
                }
                // Contribute to the global load.
                for i in 0..s.node_count() {
                    load[s.node_id(i).index()] += st[k].b[i];
                }
            }

            // Shared β update from the joint load.
            for g in 0..self.nodes {
                let total: f64 =
                    load[g] + self.neighbors[g].iter().map(|&nb| load[nb]).sum::<f64>();
                if total > 0.0 || beta[g] > 0.0 {
                    beta[g] = (beta[g] + theta * (total - 1.0)).max(0.0);
                }
            }
        }

        // Recover: per session, the union of the averaged broadcast rates
        // and the rates implied by the averaged flows (constraint (5)) —
        // the same two-candidate recovery the single-session driver uses —
        // then a *joint* MAC rescale and per-session max flow.
        let recovered: Vec<Vec<f64>> = self
            .sessions
            .iter()
            .enumerate()
            .map(|(k, s)| {
                let mut from_flows = vec![0.0f64; s.node_count()];
                for (id, link) in s.links() {
                    from_flows[link.from] =
                        from_flows[link.from].max(st[k].x_avg[id.index()] / link.p);
                }
                st[k]
                    .b_avg
                    .iter()
                    .zip(&from_flows)
                    .map(|(a, b)| a.max(*b))
                    .collect()
            })
            .collect();
        let mut load = vec![0.0f64; self.nodes];
        for (k, s) in self.sessions.iter().enumerate() {
            for i in 0..s.node_count() {
                load[s.node_id(i).index()] += recovered[k][i];
            }
        }
        let mut worst = 0.0f64;
        for g in 0..self.nodes {
            let total: f64 = load[g] + self.neighbors[g].iter().map(|&nb| load[nb]).sum::<f64>();
            worst = worst.max(total);
        }
        let scale = if worst > 1e-12 { 1.0 / worst } else { 1.0 };
        let mut gamma = Vec::with_capacity(k_count);
        let mut b_out = Vec::with_capacity(k_count);
        for (k, s) in self.sessions.iter().enumerate() {
            let b: Vec<f64> = recovered[k]
                .iter()
                .map(|v| (v * scale).clamp(0.0, 1.0))
                .collect();
            let (rate, _) = crate::flow::supported_rate(s, &b);
            gamma.push(rate * self.capacity);
            b_out.push(b.iter().map(|v| v * self.capacity).collect());
        }
        MUnicastSolution { gamma, b: b_out }
    }
}

impl MUnicastSolution {
    /// Total throughput across sessions.
    pub fn total(&self) -> f64 {
        self.gamma.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_topo::deploy::Deployment;
    use net_topo::phy::Phy;
    use net_topo::select::select_forwarders;

    fn two_sessions(seed: u64) -> (Topology, Vec<Selection>) {
        let phy = Phy::paper_lossy();
        let topo = Deployment::random(40, 6.0, &phy, seed).into_topology();
        let (s1, d1) = topo.farthest_pair();
        // Second session: reversed endpoints makes a guaranteed-valid pair.
        let sels = vec![
            select_forwarders(&topo, s1, d1),
            select_forwarders(&topo, d1, s1),
        ];
        (topo, sels)
    }

    #[test]
    fn exact_lp_allocates_both_sessions() {
        let (topo, sels) = two_sessions(3);
        let mu = MUnicast::from_selections(&topo, &sels, 1.0);
        let sol = mu.solve_exact().expect("solvable");
        assert_eq!(sol.gamma.len(), 2);
        assert!(sol.gamma.iter().all(|&g| g > 0.0), "{:?}", sol.gamma);
        assert!(sol.total() > 0.0);
    }

    #[test]
    fn sharing_costs_throughput_versus_alone() {
        // Each session alone (single-session LP) does at least as well as
        // its share of the coupled optimum.
        let (topo, sels) = two_sessions(5);
        let mu = MUnicast::from_selections(&topo, &sels, 1.0);
        let joint = mu.solve_exact().expect("solvable");
        for (k, sel) in sels.iter().enumerate() {
            let alone = crate::lp::solve_exact(&SUnicast::from_selection(&topo, sel, 1.0))
                .expect("solvable");
            assert!(
                joint.gamma[k] <= alone.gamma + 1e-6,
                "session {k}: joint {} > alone {}",
                joint.gamma[k],
                alone.gamma
            );
        }
    }

    #[test]
    fn distributed_tracks_the_joint_lp() {
        let (topo, sels) = two_sessions(7);
        let mu = MUnicast::from_selections(&topo, &sels, 1.0);
        let exact = mu.solve_exact().expect("solvable");
        let params = RateControlParams {
            max_iterations: 400,
            ..Default::default()
        };
        let dist = mu.solve_distributed(&params);
        assert!(dist.total() > 0.0);
        assert!(
            dist.total() <= exact.total() + 1e-6,
            "distributed {} beat the joint optimum {}",
            dist.total(),
            exact.total()
        );
        assert!(
            dist.total() > 0.3 * exact.total(),
            "distributed {} too far below the optimum {}",
            dist.total(),
            exact.total()
        );
    }

    #[test]
    fn joint_allocation_respects_the_shared_mac() {
        let (topo, sels) = two_sessions(9);
        let mu = MUnicast::from_selections(&topo, &sels, 1.0);
        let params = RateControlParams {
            max_iterations: 200,
            ..Default::default()
        };
        let dist = mu.solve_distributed(&params);
        // Rebuild global loads and verify every neighborhood fits in C.
        let mut load = vec![0.0f64; topo.len()];
        for (k, s) in mu.sessions().iter().enumerate() {
            for i in 0..s.node_count() {
                load[s.node_id(i).index()] += dist.b[k][i];
            }
        }
        for v in topo.nodes() {
            let total: f64 = load[v.index()]
                + topo
                    .neighbors(v)
                    .iter()
                    .map(|w| load[w.index()])
                    .sum::<f64>();
            assert!(total <= mu.capacity() + 1e-6, "{v}: load {total}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one session")]
    fn empty_sessions_panic() {
        let phy = Phy::paper_lossy();
        let topo = Deployment::random(10, 6.0, &phy, 1).into_topology();
        let _ = MUnicast::from_selections(&topo, &[], 1.0);
    }
}
