//! Exact LP solution of sUnicast via the dense simplex substrate.
//!
//! The paper observes that sUnicast "is a linear program ... and thus it can
//! be solved in polynomial time" (Sec. 3.2). The distributed algorithm is
//! validated against this exact optimum, and the `opt_vs_emulated` benchmark
//! compares it with emulated throughput (Sec. 5).

use simplex_lp::{LpProblem, Relation};

use crate::error::OptError;
use crate::instance::SUnicast;

/// Exact optimum of a sUnicast instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSolution {
    /// Optimal throughput `γ*` (same units as the capacity).
    pub gamma: f64,
    /// Optimal broadcast-rate vector, indexed by local node.
    pub b: Vec<f64>,
    /// Optimal information rates, indexed by [`crate::LinkId`].
    pub x: Vec<f64>,
}

/// Variable layout of the sUnicast LP:
/// `gamma` at index 0, then `x_e` for each link, then `b_i` for each node.
fn var_gamma() -> usize {
    0
}
fn var_x(e: usize) -> usize {
    1 + e
}
fn var_b(problem: &SUnicast, i: usize) -> usize {
    1 + problem.link_count() + i
}

/// Builds the LP for an instance (public so tests and benches can inspect
/// its size).
pub fn build_lp(problem: &SUnicast) -> LpProblem {
    let n = problem.node_count();
    let m = problem.link_count();
    let mut lp = LpProblem::maximize(1 + m + n);
    lp.set_objective_coeff(var_gamma(), 1.0); // (1) max γ

    // (2) flow conservation: Σ out − Σ in − σ(i)·γ = 0 for every node.
    for i in 0..n {
        let mut coeffs: Vec<(usize, f64)> = Vec::new();
        for l in problem.out_links(i) {
            coeffs.push((var_x(l.index()), 1.0));
        }
        for l in problem.in_links(i) {
            coeffs.push((var_x(l.index()), -1.0));
        }
        coeffs.push((var_gamma(), -problem.supply(i)));
        lp.push_constraint(&coeffs, Relation::Eq, 0.0);
    }

    // (4) broadcast MAC: b_i + Σ_{j∈N(i)} b_j ≤ C for every i ≠ S.
    for i in 0..n {
        if i == problem.src() {
            continue;
        }
        let mut coeffs = vec![(var_b(problem, i), 1.0)];
        for &j in problem.neighbors(i) {
            coeffs.push((var_b(problem, j), 1.0));
        }
        lp.push_constraint(&coeffs, Relation::Le, problem.capacity());
    }

    // (5) loss coupling: x_e − b_i·p_ij ≤ 0.
    for (id, link) in problem.links() {
        lp.push_constraint(
            &[
                (var_x(id.index()), 1.0),
                (var_b(problem, link.from), -link.p),
            ],
            Relation::Le,
            0.0,
        );
    }

    // Loose bounds 0 ≤ b_i ≤ C keep the region bounded even for the source,
    // whose MAC constraint row is skipped (matching the paper's Sec. 3.3
    // bounds on the proximal update).
    for i in 0..n {
        lp.push_upper_bound(var_b(problem, i), problem.capacity());
    }
    lp
}

/// Solves the instance exactly.
///
/// # Errors
///
/// Returns [`OptError::LpFailed`] if the solver reports the LP infeasible or
/// unbounded — both indicate instance-construction bugs, since `γ = 0,
/// x = 0, b = 0` is always feasible and every variable is bounded by `C`.
pub fn solve_exact(problem: &SUnicast) -> Result<ExactSolution, OptError> {
    let lp = build_lp(problem);
    let sol = lp.solve().map_err(|e| OptError::LpFailed(e.to_string()))?;
    let gamma = sol.value(var_gamma());
    let x = (0..problem.link_count())
        .map(|e| sol.value(var_x(e)))
        .collect();
    let b = (0..problem.node_count())
        .map(|i| sol.value(var_b(problem, i)))
        .collect();
    Ok(ExactSolution { gamma, b, x })
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_topo::graph::{Link, NodeId, Topology};
    use net_topo::select::select_forwarders;

    fn line(probs: &[f64]) -> SUnicast {
        let mut links = Vec::new();
        for (i, &p) in probs.iter().enumerate() {
            links.push(Link {
                from: NodeId::new(i),
                to: NodeId::new(i + 1),
                p,
            });
            links.push(Link {
                from: NodeId::new(i + 1),
                to: NodeId::new(i),
                p,
            });
        }
        let t = Topology::from_links(probs.len() + 1, links).unwrap();
        let sel = select_forwarders(&t, NodeId::new(0), NodeId::new(probs.len()));
        SUnicast::from_selection(&t, &sel, 1.0)
    }

    #[test]
    fn single_hop_throughput_is_capacity_times_p() {
        // One link S → T with probability p: the only MAC constraint is at T
        // (b_S ≤ C) so γ* = C·p.
        let p = line(&[0.6]);
        let sol = solve_exact(&p).unwrap();
        assert!((sol.gamma - 0.6).abs() < 1e-6, "γ = {}", sol.gamma);
    }

    #[test]
    fn two_hop_line_shares_the_channel() {
        // S → R → T, both links probability p. MAC at R: b_S + b_R ≤ C
        // (S and R are mutually in range via the S–R link; T hears R and S? —
        // only the links present define neighborhoods: T neighbors R only...
        // but R also neighbors T). Constraints: at R: b_R + b_S ≤ 1,
        // at T: b_T + b_R + (b_S if S within range of T, not here) ≤ 1.
        // Flow: γ ≤ b_S·p and γ ≤ b_R·p, so optimal b_S = b_R = 1/2,
        // γ* = p/2.
        let p = line(&[0.8, 0.8]);
        let sol = solve_exact(&p).unwrap();
        assert!((sol.gamma - 0.4).abs() < 1e-6, "γ = {}", sol.gamma);
    }

    #[test]
    fn diamond_uses_both_paths() {
        let (t, sel) = crate::instance::tests::diamond();
        let p = SUnicast::from_selection(&t, &sel, 1.0);
        let sol = solve_exact(&p).unwrap();
        // With two disjoint relays the throughput must beat the single-path
        // line bound (p/2 per path but paths share only at S and T).
        assert!(sol.gamma > 0.3, "γ = {}", sol.gamma);
        // Both relays carry flow at the optimum.
        let l1 = p.local_index(NodeId::new(1)).unwrap();
        let l2 = p.local_index(NodeId::new(2)).unwrap();
        let flow_via =
            |node: usize| -> f64 { p.in_links(node).iter().map(|l| sol.x[l.index()]).sum() };
        assert!(flow_via(l1) > 1e-6, "relay 1 unused");
        assert!(flow_via(l2) > 1e-6, "relay 2 unused");
    }

    #[test]
    fn solution_is_feasible_for_the_instance() {
        let (t, sel) = crate::instance::tests::diamond();
        let p = SUnicast::from_selection(&t, &sel, 1e5);
        let sol = solve_exact(&p).unwrap();
        assert_eq!(
            p.feasibility_violation(&sol.b, &sol.x, sol.gamma, 1e-7),
            None
        );
        assert!(sol.gamma > 0.0);
    }

    #[test]
    fn capacity_scales_linearly() {
        let (t, sel) = crate::instance::tests::diamond();
        let small = solve_exact(&SUnicast::from_selection(&t, &sel, 1.0)).unwrap();
        let big = solve_exact(&SUnicast::from_selection(&t, &sel, 1e5)).unwrap();
        assert!((big.gamma - small.gamma * 1e5).abs() < 1.0);
    }

    #[test]
    fn lossier_links_lower_the_optimum() {
        let good = solve_exact(&line(&[0.9, 0.9])).unwrap();
        let bad = solve_exact(&line(&[0.4, 0.4])).unwrap();
        assert!(good.gamma > bad.gamma);
    }
}
