//! Max-flow helper: the end-to-end information rate a broadcast-rate vector
//! can support.
//!
//! Given broadcast rates `b`, each link `(i, j)` can carry information at
//! most `b_i · p_ij` (constraint (5)); the achievable unicast rate is the
//! `S → T` max flow under those capacities. OMNC uses this to translate a
//! recovered rate vector into its realized throughput, and the protocols use
//! it when reporting the optimizer's predicted rate.

use crate::instance::SUnicast;

/// Computes the `S → T` max flow where link `e` has capacity `cap[e]`.
/// Returns the flow value and the per-link flows.
///
/// Plain Edmonds-Karp on the instance's link set (with implicit reverse
/// residual edges); instances are small DAGs so this is more than fast
/// enough.
///
/// # Panics
///
/// Panics if `cap.len() != problem.link_count()` or any capacity is
/// negative/NaN.
pub fn max_flow(problem: &SUnicast, cap: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(
        cap.len(),
        problem.link_count(),
        "capacity vector length mismatch"
    );
    for &c in cap {
        assert!(c.is_finite() && c >= 0.0, "capacities must be non-negative");
    }
    let n = problem.node_count();
    let s = problem.src();
    let t = problem.dst();
    let mut flow = vec![0.0f64; problem.link_count()];
    let scale: f64 = cap.iter().fold(0.0f64, |a, &b| a.max(b));
    // lint: allow(float-eq) -- exact-zero guard before dividing by `scale`
    if scale == 0.0 {
        return (0.0, flow);
    }
    let eps = scale * 1e-12;

    loop {
        // BFS over residual edges: forward when flow < cap, backward when
        // flow > 0.
        #[derive(Clone, Copy)]
        enum Via {
            Forward(usize),
            Backward(usize),
        }
        let mut prev: Vec<Option<Via>> = vec![None; n];
        let mut visited = vec![false; n];
        visited[s] = true;
        let mut queue = std::collections::VecDeque::from([s]);
        'bfs: while let Some(u) = queue.pop_front() {
            for l in problem.out_links(u) {
                let e = l.index();
                let link = problem.link(*l);
                if !visited[link.to] && cap[e] - flow[e] > eps {
                    visited[link.to] = true;
                    prev[link.to] = Some(Via::Forward(e));
                    if link.to == t {
                        break 'bfs;
                    }
                    queue.push_back(link.to);
                }
            }
            for l in problem.in_links(u) {
                let e = l.index();
                let link = problem.link(*l);
                if !visited[link.from] && flow[e] > eps {
                    visited[link.from] = true;
                    prev[link.from] = Some(Via::Backward(e));
                    queue.push_back(link.from);
                }
            }
        }
        if !visited[t] {
            break;
        }
        // Find the bottleneck along the augmenting path.
        let mut bottleneck = f64::INFINITY;
        let mut v = t;
        while v != s {
            match prev[v].expect("path exists") {
                Via::Forward(e) => {
                    bottleneck = bottleneck.min(cap[e] - flow[e]);
                    v = problem.link(crate::LinkId(e)).from;
                }
                Via::Backward(e) => {
                    bottleneck = bottleneck.min(flow[e]);
                    v = problem.link(crate::LinkId(e)).to;
                }
            }
        }
        // Augment.
        let mut v = t;
        while v != s {
            match prev[v].expect("path exists") {
                Via::Forward(e) => {
                    flow[e] += bottleneck;
                    v = problem.link(crate::LinkId(e)).from;
                }
                Via::Backward(e) => {
                    flow[e] -= bottleneck;
                    v = problem.link(crate::LinkId(e)).to;
                }
            }
        }
    }

    let value: f64 = problem
        .out_links(s)
        .iter()
        .map(|l| flow[l.index()])
        .sum::<f64>()
        - problem
            .in_links(s)
            .iter()
            .map(|l| flow[l.index()])
            .sum::<f64>();
    (value, flow)
}

/// The information rate supported by broadcast-rate vector `b`: max flow
/// with link capacities `b_i · p_ij`.
///
/// # Panics
///
/// Panics if `b.len() != problem.node_count()`.
pub fn supported_rate(problem: &SUnicast, b: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(
        b.len(),
        problem.node_count(),
        "broadcast vector length mismatch"
    );
    let cap: Vec<f64> = problem
        .links()
        .map(|(_, l)| (b[l.from].max(0.0)) * l.p)
        .collect();
    max_flow(problem, &cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::tests::diamond;
    use crate::lp::solve_exact;

    #[test]
    fn zero_capacities_zero_flow() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1.0);
        let (v, f) = max_flow(&p, &vec![0.0; p.link_count()]);
        assert_eq!(v, 0.0);
        assert!(f.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn diamond_flow_is_sum_of_path_bottlenecks() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1.0);
        // Give every link capacity 1: two disjoint paths → flow 2.
        let (v, _) = max_flow(&p, &vec![1.0; p.link_count()]);
        assert!((v - 2.0).abs() < 1e-9);
    }

    #[test]
    fn flow_respects_capacities_and_conservation() {
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1.0);
        let cap: Vec<f64> = (0..p.link_count()).map(|e| 0.3 + 0.2 * e as f64).collect();
        let (v, f) = max_flow(&p, &cap);
        for e in 0..p.link_count() {
            assert!(f[e] <= cap[e] + 1e-9);
            assert!(f[e] >= -1e-9);
        }
        for i in 0..p.node_count() {
            let outflow: f64 = p.out_links(i).iter().map(|l| f[l.index()]).sum();
            let inflow: f64 = p.in_links(i).iter().map(|l| f[l.index()]).sum();
            let expect = p.supply(i) * v;
            assert!((outflow - inflow - expect).abs() < 1e-9, "node {i}");
        }
    }

    #[test]
    fn supported_rate_of_exact_b_reaches_gamma() {
        // Max flow under capacities b*·p must recover at least γ* of the LP.
        let (t, sel) = diamond();
        let p = SUnicast::from_selection(&t, &sel, 1.0);
        let sol = solve_exact(&p).unwrap();
        let (v, _) = supported_rate(&p, &sol.b);
        assert!(v >= sol.gamma - 1e-6, "flow {v} < γ* {}", sol.gamma);
    }

    #[test]
    fn matches_lp_max_flow_on_random_instances() {
        use net_topo::deploy::Deployment;
        use net_topo::phy::Phy;
        use net_topo::select::select_forwarders;
        use rand::{Rng, SeedableRng};
        use simplex_lp::{LpProblem, Relation};

        let phy = Phy::paper_lossy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for seed in 0..5 {
            let topo = Deployment::random(25, 6.0, &phy, seed).into_topology();
            let (s, d) = topo.farthest_pair();
            let sel = select_forwarders(&topo, s, d);
            let p = SUnicast::from_selection(&topo, &sel, 1.0);
            let cap: Vec<f64> = (0..p.link_count())
                .map(|_| rng.gen_range(0.0..1.0))
                .collect();
            let (v, _) = max_flow(&p, &cap);

            // LP formulation of the same max flow.
            let mut lp = LpProblem::maximize(p.link_count() + 1);
            let gamma = p.link_count();
            lp.set_objective_coeff(gamma, 1.0);
            for (id, _) in p.links() {
                lp.push_upper_bound(id.index(), cap[id.index()]);
            }
            for i in 0..p.node_count() {
                let mut coeffs: Vec<(usize, f64)> = Vec::new();
                for l in p.out_links(i) {
                    coeffs.push((l.index(), 1.0));
                }
                for l in p.in_links(i) {
                    coeffs.push((l.index(), -1.0));
                }
                coeffs.push((gamma, -p.supply(i)));
                lp.push_constraint(&coeffs, Relation::Eq, 0.0);
            }
            let lp_v = lp.solve().unwrap().objective();
            assert!((v - lp_v).abs() < 1e-6, "seed {seed}: EK {v} vs LP {lp_v}");
        }
    }
}
