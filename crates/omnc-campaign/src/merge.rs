//! Per-cell result files and the deterministic merge stage.
//!
//! Every completed cell is one JSON file under `<out>/cells/`, written
//! atomically (tmp + rename) *before* its journal line, so a journaled
//! key always has a readable result. The merge stage never looks at
//! in-memory results or completion order: it re-reads the cell files in
//! sorted-key order and concatenates/folds them. Fresh runs, `--jobs N`
//! for any N, and kill-and-resume runs therefore produce byte-identical
//! merged artifacts by construction.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use omnc::multi::MultiSessionOutcome;
use omnc::runner::SessionOutcome;
use telemetry::{
    merge_metric_snapshots, merge_profiles, merge_timelines, MetricSnapshot, ProfileReport,
    TimelineReport,
};

use crate::spec::Cell;

/// Everything a cell run produces, as stored in its result file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell's key (`"<variant>/<protocol>/<session:010>"`).
    pub key: String,
    /// Session index within the variant's scenario.
    pub session: u64,
    /// The measured outcome. For a multi-session cell this is the
    /// synthesized aggregate (see [`crate::run_one_cell`]); the full
    /// per-session picture rides in `multi`.
    pub outcome: SessionOutcome,
    /// The coupled multi-session outcome (`None` for classic per-session
    /// cells).
    pub multi: Option<MultiSessionOutcome>,
    /// The cell's causal trace as JSONL text
    /// (`SessionStart ..= SessionEnd`), ready for concatenation.
    pub trace: String,
    /// The cell's metric snapshot (fresh registry per cell).
    pub metrics: Vec<MetricSnapshot>,
    /// The cell's span profile (fresh virtual-clock profiler per cell).
    pub profile: ProfileReport,
    /// The cell's windowed dynamics series (fresh recorder per cell,
    /// series names prefixed with the cell key).
    pub timeline: TimelineReport,
}

/// One line of the merged `outcomes.jsonl`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellRecord {
    /// The cell's key.
    pub key: String,
    /// Session index within the variant's scenario.
    pub session: u64,
    /// The measured outcome (aggregate for multi-session cells).
    pub outcome: SessionOutcome,
    /// The coupled multi-session outcome (`None` for classic cells).
    pub multi: Option<MultiSessionOutcome>,
}

/// The merged `telemetry.json`: campaign-wide metrics and span profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignTelemetry {
    /// All cells' registries folded (counters/histograms sum, gauges max).
    pub metrics: Vec<MetricSnapshot>,
    /// All cells' span profiles folded (per-path sums).
    pub profile: ProfileReport,
}

/// The result-file path of `key` under `out_dir` (keys contain `/`, so
/// segments are joined with `__` into a flat file name).
pub fn cell_path(out_dir: &Path, key: &str) -> PathBuf {
    out_dir.join("cells").join(key.replace('/', "__") + ".json")
}

/// Writes `bytes` to `path` atomically: a unique temp file in the same
/// directory, flushed, then renamed over the target.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.flush()?;
    }
    fs::rename(&tmp, path)
}

/// Writes one cell's result file atomically.
///
/// # Errors
///
/// Returns the I/O error if the file cannot be written.
pub fn write_cell(out_dir: &Path, result: &CellResult) -> io::Result<()> {
    let json = serde_json::to_string(result)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_atomic(&cell_path(out_dir, &result.key), json.as_bytes())
}

/// Reads one cell's result file back.
///
/// # Errors
///
/// Fails if the file is missing or does not parse as a [`CellResult`].
pub fn read_cell(out_dir: &Path, key: &str) -> io::Result<CellResult> {
    let path = cell_path(out_dir, key);
    let text = fs::read_to_string(&path)?;
    serde_json::from_str(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// Folds every cell's result file into the campaign artifacts, in
/// sorted-key order (the order of `cells`, which [`crate::spec::CampaignSpec::cells`]
/// guarantees):
///
/// * `outcomes.jsonl` — one [`CellRecord`] line per cell;
/// * `trace.jsonl` — the concatenated causal traces, `omnc-report
///   analyze`-ready;
/// * `telemetry.json` — merged metrics + span profile;
/// * `timeline.json` — all cells' windowed dynamics series merged
///   (disjoint by cell-key prefix), `omnc-report timeline`-ready;
/// * `report.json` — the `omnc-report` analysis of the merged trace,
///   the artifact CI gates with `omnc-report compare`.
///
/// # Errors
///
/// Fails if any cell file is missing/corrupt or an artifact cannot be
/// written.
pub fn merge_campaign(out_dir: &Path, cells: &[Cell]) -> io::Result<()> {
    let mut outcomes = String::new();
    let mut trace = String::new();
    let mut metrics: Vec<Vec<MetricSnapshot>> = Vec::with_capacity(cells.len());
    let mut profiles: Vec<ProfileReport> = Vec::with_capacity(cells.len());
    let mut timelines: Vec<TimelineReport> = Vec::with_capacity(cells.len());
    for cell in cells {
        let result = read_cell(out_dir, &cell.key)?;
        let record = CellRecord {
            key: result.key,
            session: result.session,
            outcome: result.outcome,
            multi: result.multi,
        };
        let line = serde_json::to_string(&record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        outcomes.push_str(&line);
        outcomes.push('\n');
        trace.push_str(&result.trace);
        metrics.push(result.metrics);
        profiles.push(result.profile);
        timelines.push(result.timeline);
    }
    let telemetry = CampaignTelemetry {
        metrics: merge_metric_snapshots(&metrics),
        profile: merge_profiles(&profiles),
    };
    let telemetry_json = serde_json::to_string(&telemetry)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let timeline_json = serde_json::to_string(&merge_timelines(&timelines))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let report = omnc_report::analyze_trace_text(&trace)?;
    let report_json = serde_json::to_string(&report)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;

    write_atomic(&out_dir.join("outcomes.jsonl"), outcomes.as_bytes())?;
    write_atomic(&out_dir.join("trace.jsonl"), trace.as_bytes())?;
    write_atomic(&out_dir.join("telemetry.json"), telemetry_json.as_bytes())?;
    write_atomic(&out_dir.join("timeline.json"), timeline_json.as_bytes())?;
    write_atomic(&out_dir.join("report.json"), report_json.as_bytes())
}
