//! `omnc-campaign` — parallel, resumable experiment-campaign
//! orchestration over the OMNC runner.
//!
//! A campaign is a declarative JSON matrix (scenario variants ×
//! protocols × session indices) expanded into independent *cells*. Each
//! cell runs the shared [`omnc::runner::run_cell`] entry point with its
//! own fresh telemetry registry and virtual-clock profiler, so cells are
//! deterministic and order-free. The [`executor`] schedules cells across
//! worker threads with work stealing, `catch_unwind` panic isolation,
//! and bounded retry; completions stream back to the submitting thread,
//! which writes one result file per cell (atomically) and appends the
//! [`journal`] line that makes the cell durable. The [`merge`] stage
//! re-reads the result files in sorted-key order, so the merged
//! artifacts — `outcomes.jsonl`, `trace.jsonl`, `telemetry.json`,
//! `timeline.json`, `report.json` — are byte-identical whatever
//! `--jobs` was and whether the campaign ran straight through or was
//! killed and resumed.
//!
//! Memory figures are the one exception to that determinism contract:
//! RSS depends on the host, the allocator, and worker scheduling, so
//! per-cell and campaign-wide peak RSS go to a separate `memory.json`
//! and are *never* part of the five byte-compared artifacts above.
//! Worker-utilization telemetry follows the same split: per-worker
//! busy/idle windows are wall-clock and scheduling dependent, so they
//! go to `workers.json` (a plain `TimelineReport`, renderable with
//! `omnc-report timeline`) and to the live `/series` endpoint — never
//! into the byte-compared `timeline.json`.
//!
//! With `--serve ADDR` the campaign additionally runs the telemetry
//! [`Observer`] thread: `/metrics` exposes campaign counters in the
//! Prometheus text format, `/progress` the live [`ProgressBoard`]
//! (cells done/total, per-worker state, ETA), `/series` the live
//! worker-utilization windows. Serving is strictly read-only, so every
//! merged artifact stays byte-identical with it on. Each cell attempt
//! also arms a panic-safe [`FlightRecorder`]: a cell that dies beyond
//! its retry budget leaves `flight-<cell>.jsonl` — the last breadcrumbs
//! before the panic — next to the other artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod journal;
pub mod merge;
pub mod spec;

use std::io;
use std::path::Path;

use telemetry::{
    FlightRecorder, Logger, Observer, ObserverHandles, Profiler, ProgressBoard, Registry,
    TimeSeries,
};

use omnc::multi::run_multi_cell;
use omnc::runner::{run_cell, RunOptions, SessionOutcome};

use crate::journal::{Journal, JournalEntry};
use crate::merge::{merge_campaign, write_cell, CellResult};
use crate::spec::{CampaignSpec, Cell};

/// Events each cell's flight recorder keeps (the black-box tail).
const FLIGHT_CAPACITY: usize = 256;

/// Knobs of one campaign invocation.
#[derive(Debug)]
pub struct CampaignOptions {
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Keep journaled cells instead of starting fresh.
    pub resume: bool,
    /// Progress logger.
    pub log: Logger,
    /// Bind address for the live observer (`/metrics`, `/progress`,
    /// `/series`), e.g. `127.0.0.1:9464`. `None` disables serving.
    pub serve: Option<String>,
}

/// A cell that kept panicking after its retry budget.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// The failed cell's key.
    pub key: String,
    /// Attempts made (retries + 1).
    pub attempts: u32,
    /// The last panic message.
    pub message: String,
}

/// Memory figures sampled when one cell's completion reached the
/// submitting thread (host-dependent; see [`CampaignMemory`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CellMemory {
    /// The completed cell's key.
    pub key: String,
    /// Process RSS (MB) observed at completion time.
    pub rss_mb: f64,
}

/// The `memory.json` artifact: campaign-wide peak RSS plus one sample
/// per executed cell (sorted by key). Deliberately separate from the
/// five byte-compared merged artifacts, because RSS varies by host and
/// scheduling while those must stay identical across `--jobs` values.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignMemory {
    /// Peak RSS (VmHWM, MB) of the whole campaign process so far.
    pub peak_rss_mb: f64,
    /// Per-cell completion-time samples, sorted by cell key.
    pub cells: Vec<CellMemory>,
}

/// What a campaign invocation did.
#[derive(Debug)]
pub struct CampaignSummary {
    /// Cells in the spec's matrix.
    pub total: usize,
    /// Cells executed this invocation.
    pub ran: usize,
    /// Cells skipped because the journal already had them.
    pub skipped: usize,
    /// Cells that exhausted their retry budget.
    pub failures: Vec<CellFailure>,
    /// Whether the merged artifacts were (re)written — true exactly when
    /// every cell of the matrix completed.
    pub merged: bool,
}

/// The black-box dump path for one cell: `flight-<key>.jsonl` in the
/// campaign output directory (key slashes flattened like cell files).
#[must_use]
pub fn flight_path(out_dir: &Path, key: &str) -> std::path::PathBuf {
    out_dir.join(format!("flight-{}.jsonl", key.replace('/', "__")))
}

/// Runs one cell in isolation: fresh registry, fresh virtual-clock
/// profiler, fresh timeline recorder (series scoped by the cell key),
/// full causal trace. Everything the merge stage needs comes back in
/// the [`CellResult`]. The `flight` recorder (disabled outside
/// campaigns) collects the runner's breadcrumbs so a panic hook can
/// dump the tail; it never influences the result.
///
/// A multi-session cell (`cell.multi`) runs all of its scenario's
/// sessions concurrently on one shared mesh via
/// [`omnc::multi::run_multi_cell`]; its per-session traces are
/// concatenated in session order (each is a complete
/// `SessionStart ..= SessionEnd` stream, so the merged `trace.jsonl`
/// stays `omnc-report analyze`-ready), and a summary [`SessionOutcome`]
/// is synthesized so the merged `outcomes.jsonl` keeps one schema.
///
/// # Panics
///
/// Propagates scenario/session panics (impossible endpoint constraints,
/// degenerate configurations) — the executor catches them.
pub fn run_one_cell(cell: &Cell, trace_capacity: usize, flight: &FlightRecorder) -> CellResult {
    let registry = Registry::new();
    let profiler = Profiler::virtual_clock();
    let timeline = TimeSeries::enabled(0.25, 64);
    let options = RunOptions {
        trace_capacity: Some(trace_capacity),
        profiler: profiler.clone(),
        registry: registry.clone(),
        timeline: timeline.clone(),
        timeline_scope: cell.key.clone(),
        flight: flight.clone(),
        ..RunOptions::default()
    };
    let mut buf = Vec::new();
    let (outcome, multi) = if cell.multi {
        let (out, traces) = run_multi_cell(&cell.scenario, cell.protocol, &options);
        for trace in traces.expect("tracing was enabled") {
            trace
                .write_jsonl(&mut buf)
                .expect("in-memory trace export cannot fail");
        }
        (aggregate_outcome(&out), Some(out))
    } else {
        let (outcome, trace) = run_cell(&cell.scenario, cell.protocol, cell.session, &options);
        trace
            .expect("tracing was enabled")
            .write_jsonl(&mut buf)
            .expect("in-memory trace export cannot fail");
        (outcome, None)
    };
    CellResult {
        key: cell.key.clone(),
        session: cell.session,
        outcome,
        multi,
        trace: String::from_utf8(buf).expect("trace JSONL is UTF-8"),
        metrics: registry.snapshot(),
        profile: profiler.report(),
        timeline: timeline.snapshot(),
    }
}

/// Collapses a coupled multi-session outcome into the single-session
/// outcome schema so `outcomes.jsonl` lines stay uniform: throughput and
/// packet/generation counts sum over the sessions, queue averages carry
/// over (they already span the whole shared mesh), and predicted
/// throughput sums the joint program's per-session rates. Node/path
/// utility are per-selection diagnostics that have no meaningful joint
/// analogue, so they report 0 — read the `multi` field for the real
/// per-session picture.
fn aggregate_outcome(out: &omnc::multi::MultiSessionOutcome) -> SessionOutcome {
    let predicted: Vec<f64> = out
        .sessions
        .iter()
        .filter_map(|s| s.predicted_throughput)
        .collect();
    SessionOutcome {
        protocol: out.protocol,
        throughput: out.total_throughput,
        queue_averages: out.queue_averages.clone(),
        node_utility: 0.0,
        path_utility: 0.0,
        rc_iterations: None,
        predicted_throughput: (!predicted.is_empty()).then(|| predicted.iter().sum()),
        generations_decoded: out.sessions.iter().map(|s| s.generations_decoded).sum(),
        packet_counts: (
            out.sessions.iter().map(|s| s.packet_counts.0).sum(),
            out.sessions.iter().map(|s| s.packet_counts.1).sum(),
        ),
        verification_failures: 0,
    }
}

/// Runs (or resumes) `spec` into `out_dir`: executes every cell not yet
/// journaled, then — if the whole matrix is complete — rewrites the
/// merged artifacts. Failed cells leave every other cell's results
/// intact; a later `resume` retries only the missing ones.
///
/// # Errors
///
/// Fails on an invalid spec (`InvalidInput`) or on I/O errors writing
/// results, the journal, or the merged artifacts.
pub fn run_campaign(
    spec: &CampaignSpec,
    out_dir: &Path,
    options: &CampaignOptions,
) -> io::Result<CampaignSummary> {
    spec.validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let cells = spec.cells();
    let cells_dir = out_dir.join("cells");
    std::fs::create_dir_all(&cells_dir)?;
    let journal = Journal::at(&out_dir.join("journal.jsonl"));
    if !options.resume {
        journal.reset()?;
        std::fs::remove_dir_all(&cells_dir)?;
        std::fs::create_dir_all(&cells_dir)?;
    }

    // A journaled key counts as done only if its result file survives
    // (the journal line is written strictly after the file).
    let journaled = journal.completed()?;
    let pending: Vec<usize> = cells
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            !journaled.contains(&c.key) || !merge::cell_path(out_dir, &c.key).is_file()
        })
        .map(|(i, _)| i)
        .collect();
    let skipped = cells.len() - pending.len();
    if skipped > 0 {
        options
            .log
            .info(&format!("resume: {skipped} cells already journaled"));
    }

    // The live observability plane. Everything below is read-only over
    // the run: the observer thread snapshots, it never writes into the
    // cells, so merged artifacts cannot depend on whether it is on.
    let effective_jobs = options.jobs.clamp(1, pending.len().max(1));
    let live_registry = if options.serve.is_some() {
        Registry::new()
    } else {
        Registry::disabled()
    };
    let cells_total = live_registry.gauge("campaign.cells.total");
    let cells_skipped = live_registry.gauge("campaign.cells.skipped");
    let cells_completed = live_registry.counter("campaign.cells.completed");
    let cells_failed = live_registry.counter("campaign.cells.failed");
    cells_total.set(cells.len() as f64);
    cells_skipped.set(skipped as f64);
    // Per-worker busy/idle windows: wall-clock + scheduling dependent,
    // so they feed `/series` and `workers.json`, never `timeline.json`.
    let workers_timeline = TimeSeries::enabled(1.0, 256);
    let board = if options.serve.is_some() {
        ProgressBoard::enabled(&spec.name, pending.len(), effective_jobs)
    } else {
        ProgressBoard::disabled()
    };
    let _observer = match &options.serve {
        Some(addr) => {
            let observer = Observer::serve(
                addr,
                ObserverHandles {
                    registry: live_registry.clone(),
                    timeline: workers_timeline.clone(),
                    progress: board.clone(),
                },
            )?;
            options.log.info(&format!(
                "observer serving /metrics /progress /series on http://{}",
                observer.local_addr()
            ));
            Some(observer)
        }
        None => None,
    };

    let trace_capacity = spec.trace_capacity();
    let mut failures: Vec<CellFailure> = Vec::new();
    let mut io_error: Option<io::Error> = None;
    let mut done = 0usize;
    let mut memory_cells: Vec<CellMemory> = Vec::new();
    let mut last_finish_s = vec![0.0f64; effective_jobs];
    executor::run_parallel(
        pending.len(),
        options.jobs,
        spec.retries(),
        |i, worker| {
            let cell = &cells[pending[i]];
            board.cell_started(worker, &cell.key);
            // Every attempt gets a fresh black box armed to this thread:
            // if the cell panics, the hook dumps the ring before the
            // executor's catch_unwind sees anything.
            let flight = FlightRecorder::enabled(FLIGHT_CAPACITY);
            let _black_box = flight.arm(&cell.key, &flight_path(out_dir, &cell.key));
            run_one_cell(cell, trace_capacity, &flight)
        },
        |completion| {
            let cell = &cells[pending[completion.item]];
            board.cell_finished(completion.worker, completion.result.is_ok());
            if let Some(prev) = last_finish_s.get_mut(completion.worker) {
                let idle = (completion.started_s - *prev).max(0.0);
                let busy = (completion.finished_s - completion.started_s).max(0.0);
                let worker = format!("w{:02}", completion.worker);
                workers_timeline.record(&format!("{worker}/idle_s"), *prev, idle);
                workers_timeline.record(&format!("{worker}/busy_s"), completion.started_s, busy);
                *prev = completion.finished_s;
            }
            match completion.result {
                Ok((cell_result, attempts)) => {
                    let persisted = write_cell(out_dir, &cell_result).and_then(|()| {
                        journal.record(&JournalEntry {
                            key: cell.key.clone(),
                            attempts,
                            wall_ms: Some(JournalEntry::now_ms()),
                        })
                    });
                    if let Err(e) = persisted {
                        if io_error.is_none() {
                            io_error = Some(e);
                        }
                        return;
                    }
                    // A retried-then-successful attempt may have left a
                    // stale black box; the cell ended well, drop it.
                    let _ = std::fs::remove_file(flight_path(out_dir, &cell.key));
                    cells_completed.inc();
                    done += 1;
                    if let Some(rss) = telemetry::sample_rss() {
                        memory_cells.push(CellMemory {
                            key: cell.key.clone(),
                            rss_mb: rss.vm_rss_bytes as f64 / (1024.0 * 1024.0),
                        });
                    }
                    options
                        .log
                        .debug(&format!("cell {} done ({attempts} attempt(s))", cell.key));
                    if done.is_multiple_of(10) {
                        options
                            .log
                            .info(&format!("{done}/{} cells done", pending.len()));
                    }
                }
                Err(e) => {
                    options.log.warn(&format!(
                        "cell {} failed after {} attempts: {} (black box: {})",
                        cell.key,
                        e.attempts,
                        e.message,
                        flight_path(out_dir, &cell.key).display()
                    ));
                    cells_failed.inc();
                    failures.push(CellFailure {
                        key: cell.key.clone(),
                        attempts: e.attempts,
                        message: e.message,
                    });
                }
            }
        },
    );
    if let Some(e) = io_error {
        return Err(e);
    }
    failures.sort_by(|a, b| a.key.cmp(&b.key));

    // Worker-utilization artifact: same host-dependence argument as
    // memory.json. Only written when this invocation actually ran cells,
    // so a no-op resume cannot clobber the original run's telemetry.
    if !pending.is_empty() {
        let report = workers_timeline.snapshot();
        let json = serde_json::to_string(&report)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(out_dir.join("workers.json"), json + "\n")?;
    }

    // Host-dependent memory figures go to their own artifact so the five
    // byte-compared ones stay deterministic (see module docs).
    if let Some(rss) = telemetry::sample_rss() {
        memory_cells.sort_by(|a, b| a.key.cmp(&b.key));
        let memory = CampaignMemory {
            peak_rss_mb: rss.vm_hwm_bytes as f64 / (1024.0 * 1024.0),
            cells: memory_cells,
        };
        let json = serde_json::to_string(&memory)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(out_dir.join("memory.json"), json + "\n")?;
        options.log.debug(&format!(
            "memory: campaign peak rss {:.1} MB -> memory.json",
            memory.peak_rss_mb
        ));
    }

    let merged = failures.is_empty();
    if merged {
        merge_campaign(out_dir, &cells)?;
        options.log.info(&format!(
            "campaign {}: {} cells ({} run, {skipped} resumed) -> {}",
            spec.name,
            cells.len(),
            done,
            out_dir.display()
        ));
    } else {
        options.log.warn(&format!(
            "campaign {}: {} of {} cells failed; merge skipped (fix and `resume`)",
            spec.name,
            failures.len(),
            cells.len()
        ));
    }
    Ok(CampaignSummary {
        total: cells.len(),
        ran: done,
        skipped,
        failures,
        merged,
    })
}

/// Completion state of a campaign directory without running anything.
#[derive(Debug)]
pub struct CampaignStatus {
    /// Cells in the spec's matrix.
    pub total: usize,
    /// Journaled cells whose result files exist.
    pub completed: usize,
    /// Keys still to run (sorted).
    pub pending: Vec<String>,
    /// Completion rate over the journal's wall-clock stamps (needs at
    /// least two stamped entries).
    pub cells_per_s: Option<f64>,
    /// Estimated seconds to finish `pending` at that rate.
    pub eta_s: Option<f64>,
}

/// Reports how much of `spec` is already durably complete in `out_dir`.
///
/// The rate/ETA estimate replays the journal's `wall_ms` stamps and
/// feeds their span through the same [`telemetry::throughput_eta`]
/// estimator the live `/progress` endpoint uses — one implementation,
/// two surfaces. A journal from before timestamps existed (or with a
/// single entry) simply reports no estimate.
///
/// # Errors
///
/// Fails on an invalid spec or an unreadable journal.
pub fn campaign_status(spec: &CampaignSpec, out_dir: &Path) -> io::Result<CampaignStatus> {
    spec.validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let cells = spec.cells();
    let journal = Journal::at(&out_dir.join("journal.jsonl"));
    let entries = journal.entries()?;
    let journaled: std::collections::BTreeSet<&str> =
        entries.iter().map(|e| e.key.as_str()).collect();
    let pending: Vec<String> = cells
        .iter()
        .filter(|c| {
            !journaled.contains(c.key.as_str()) || !merge::cell_path(out_dir, &c.key).is_file()
        })
        .map(|c| c.key.clone())
        .collect();

    let stamps: Vec<u64> = entries.iter().filter_map(|e| e.wall_ms).collect();
    let span_s = match (stamps.iter().min(), stamps.iter().max()) {
        (Some(&first), Some(&last)) => (last.saturating_sub(first)) as f64 / 1000.0,
        _ => 0.0,
    };
    // The first stamp marks a completion, not the campaign start, so
    // only the stamps after it represent measured throughput.
    let estimate = telemetry::throughput_eta(stamps.len().saturating_sub(1), pending.len(), span_s);
    Ok(CampaignStatus {
        total: cells.len(),
        completed: cells.len() - pending.len(),
        pending,
        cells_per_s: estimate.map(|(rate, _)| rate),
        eta_s: estimate.map(|(_, eta)| eta),
    })
}
