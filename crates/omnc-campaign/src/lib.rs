//! `omnc-campaign` — parallel, resumable experiment-campaign
//! orchestration over the OMNC runner.
//!
//! A campaign is a declarative JSON matrix (scenario variants ×
//! protocols × session indices) expanded into independent *cells*. Each
//! cell runs the shared [`omnc::runner::run_cell`] entry point with its
//! own fresh telemetry registry and virtual-clock profiler, so cells are
//! deterministic and order-free. The [`executor`] schedules cells across
//! worker threads with work stealing, `catch_unwind` panic isolation,
//! and bounded retry; completions stream back to the submitting thread,
//! which writes one result file per cell (atomically) and appends the
//! [`journal`] line that makes the cell durable. The [`merge`] stage
//! re-reads the result files in sorted-key order, so the merged
//! artifacts — `outcomes.jsonl`, `trace.jsonl`, `telemetry.json`,
//! `timeline.json`, `report.json` — are byte-identical whatever
//! `--jobs` was and whether the campaign ran straight through or was
//! killed and resumed.
//!
//! Memory figures are the one exception to that determinism contract:
//! RSS depends on the host, the allocator, and worker scheduling, so
//! per-cell and campaign-wide peak RSS go to a separate `memory.json`
//! and are *never* part of the five byte-compared artifacts above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod journal;
pub mod merge;
pub mod spec;

use std::io;
use std::path::Path;

use telemetry::{Logger, Profiler, Registry, TimeSeries};

use omnc::runner::{run_cell, RunOptions};

use crate::journal::{Journal, JournalEntry};
use crate::merge::{merge_campaign, write_cell, CellResult};
use crate::spec::{CampaignSpec, Cell};

/// Knobs of one campaign invocation.
#[derive(Debug)]
pub struct CampaignOptions {
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Keep journaled cells instead of starting fresh.
    pub resume: bool,
    /// Progress logger.
    pub log: Logger,
}

/// A cell that kept panicking after its retry budget.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// The failed cell's key.
    pub key: String,
    /// Attempts made (retries + 1).
    pub attempts: u32,
    /// The last panic message.
    pub message: String,
}

/// Memory figures sampled when one cell's completion reached the
/// submitting thread (host-dependent; see [`CampaignMemory`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CellMemory {
    /// The completed cell's key.
    pub key: String,
    /// Process RSS (MB) observed at completion time.
    pub rss_mb: f64,
}

/// The `memory.json` artifact: campaign-wide peak RSS plus one sample
/// per executed cell (sorted by key). Deliberately separate from the
/// five byte-compared merged artifacts, because RSS varies by host and
/// scheduling while those must stay identical across `--jobs` values.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignMemory {
    /// Peak RSS (VmHWM, MB) of the whole campaign process so far.
    pub peak_rss_mb: f64,
    /// Per-cell completion-time samples, sorted by cell key.
    pub cells: Vec<CellMemory>,
}

/// What a campaign invocation did.
#[derive(Debug)]
pub struct CampaignSummary {
    /// Cells in the spec's matrix.
    pub total: usize,
    /// Cells executed this invocation.
    pub ran: usize,
    /// Cells skipped because the journal already had them.
    pub skipped: usize,
    /// Cells that exhausted their retry budget.
    pub failures: Vec<CellFailure>,
    /// Whether the merged artifacts were (re)written — true exactly when
    /// every cell of the matrix completed.
    pub merged: bool,
}

/// Runs one cell in isolation: fresh registry, fresh virtual-clock
/// profiler, fresh timeline recorder (series scoped by the cell key),
/// full causal trace. Everything the merge stage needs comes back in
/// the [`CellResult`].
///
/// # Panics
///
/// Propagates scenario/session panics (impossible endpoint constraints,
/// degenerate configurations) — the executor catches them.
pub fn run_one_cell(cell: &Cell, trace_capacity: usize) -> CellResult {
    let registry = Registry::new();
    let profiler = Profiler::virtual_clock();
    let timeline = TimeSeries::enabled(0.25, 64);
    let options = RunOptions {
        trace_capacity: Some(trace_capacity),
        profiler: profiler.clone(),
        registry: registry.clone(),
        timeline: timeline.clone(),
        timeline_scope: cell.key.clone(),
        ..RunOptions::default()
    };
    let (outcome, trace) = run_cell(&cell.scenario, cell.protocol, cell.session, &options);
    let mut buf = Vec::new();
    trace
        .expect("tracing was enabled")
        .write_jsonl(&mut buf)
        .expect("in-memory trace export cannot fail");
    CellResult {
        key: cell.key.clone(),
        session: cell.session,
        outcome,
        trace: String::from_utf8(buf).expect("trace JSONL is UTF-8"),
        metrics: registry.snapshot(),
        profile: profiler.report(),
        timeline: timeline.snapshot(),
    }
}

/// Runs (or resumes) `spec` into `out_dir`: executes every cell not yet
/// journaled, then — if the whole matrix is complete — rewrites the
/// merged artifacts. Failed cells leave every other cell's results
/// intact; a later `resume` retries only the missing ones.
///
/// # Errors
///
/// Fails on an invalid spec (`InvalidInput`) or on I/O errors writing
/// results, the journal, or the merged artifacts.
pub fn run_campaign(
    spec: &CampaignSpec,
    out_dir: &Path,
    options: &CampaignOptions,
) -> io::Result<CampaignSummary> {
    spec.validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let cells = spec.cells();
    let cells_dir = out_dir.join("cells");
    std::fs::create_dir_all(&cells_dir)?;
    let journal = Journal::at(&out_dir.join("journal.jsonl"));
    if !options.resume {
        journal.reset()?;
        std::fs::remove_dir_all(&cells_dir)?;
        std::fs::create_dir_all(&cells_dir)?;
    }

    // A journaled key counts as done only if its result file survives
    // (the journal line is written strictly after the file).
    let journaled = journal.completed()?;
    let pending: Vec<usize> = cells
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            !journaled.contains(&c.key) || !merge::cell_path(out_dir, &c.key).is_file()
        })
        .map(|(i, _)| i)
        .collect();
    let skipped = cells.len() - pending.len();
    if skipped > 0 {
        options
            .log
            .info(&format!("resume: {skipped} cells already journaled"));
    }

    let trace_capacity = spec.trace_capacity();
    let mut failures: Vec<CellFailure> = Vec::new();
    let mut io_error: Option<io::Error> = None;
    let mut done = 0usize;
    let mut memory_cells: Vec<CellMemory> = Vec::new();
    executor::run_parallel(
        pending.len(),
        options.jobs,
        spec.retries(),
        |i| run_one_cell(&cells[pending[i]], trace_capacity),
        |i, result| {
            let cell = &cells[pending[i]];
            match result {
                Ok((cell_result, attempts)) => {
                    let persisted = write_cell(out_dir, &cell_result).and_then(|()| {
                        journal.record(&JournalEntry {
                            key: cell.key.clone(),
                            attempts,
                        })
                    });
                    if let Err(e) = persisted {
                        if io_error.is_none() {
                            io_error = Some(e);
                        }
                        return;
                    }
                    done += 1;
                    if let Some(rss) = telemetry::sample_rss() {
                        memory_cells.push(CellMemory {
                            key: cell.key.clone(),
                            rss_mb: rss.vm_rss_bytes as f64 / (1024.0 * 1024.0),
                        });
                    }
                    options
                        .log
                        .debug(&format!("cell {} done ({attempts} attempt(s))", cell.key));
                    if done.is_multiple_of(10) {
                        options
                            .log
                            .info(&format!("{done}/{} cells done", pending.len()));
                    }
                }
                Err(e) => {
                    options.log.warn(&format!(
                        "cell {} failed after {} attempts: {}",
                        cell.key, e.attempts, e.message
                    ));
                    failures.push(CellFailure {
                        key: cell.key.clone(),
                        attempts: e.attempts,
                        message: e.message,
                    });
                }
            }
        },
    );
    if let Some(e) = io_error {
        return Err(e);
    }
    failures.sort_by(|a, b| a.key.cmp(&b.key));

    // Host-dependent memory figures go to their own artifact so the five
    // byte-compared ones stay deterministic (see module docs).
    if let Some(rss) = telemetry::sample_rss() {
        memory_cells.sort_by(|a, b| a.key.cmp(&b.key));
        let memory = CampaignMemory {
            peak_rss_mb: rss.vm_hwm_bytes as f64 / (1024.0 * 1024.0),
            cells: memory_cells,
        };
        let json = serde_json::to_string(&memory)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(out_dir.join("memory.json"), json + "\n")?;
        options.log.debug(&format!(
            "memory: campaign peak rss {:.1} MB -> memory.json",
            memory.peak_rss_mb
        ));
    }

    let merged = failures.is_empty();
    if merged {
        merge_campaign(out_dir, &cells)?;
        options.log.info(&format!(
            "campaign {}: {} cells ({} run, {skipped} resumed) -> {}",
            spec.name,
            cells.len(),
            done,
            out_dir.display()
        ));
    } else {
        options.log.warn(&format!(
            "campaign {}: {} of {} cells failed; merge skipped (fix and `resume`)",
            spec.name,
            failures.len(),
            cells.len()
        ));
    }
    Ok(CampaignSummary {
        total: cells.len(),
        ran: done,
        skipped,
        failures,
        merged,
    })
}

/// Completion state of a campaign directory without running anything.
#[derive(Debug)]
pub struct CampaignStatus {
    /// Cells in the spec's matrix.
    pub total: usize,
    /// Journaled cells whose result files exist.
    pub completed: usize,
    /// Keys still to run (sorted).
    pub pending: Vec<String>,
}

/// Reports how much of `spec` is already durably complete in `out_dir`.
///
/// # Errors
///
/// Fails on an invalid spec or an unreadable journal.
pub fn campaign_status(spec: &CampaignSpec, out_dir: &Path) -> io::Result<CampaignStatus> {
    spec.validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let cells = spec.cells();
    let journaled = Journal::at(&out_dir.join("journal.jsonl")).completed()?;
    let pending: Vec<String> = cells
        .iter()
        .filter(|c| !journaled.contains(&c.key) || !merge::cell_path(out_dir, &c.key).is_file())
        .map(|c| c.key.clone())
        .collect();
    Ok(CampaignStatus {
        total: cells.len(),
        completed: cells.len() - pending.len(),
        pending,
    })
}
