//! The declarative campaign specification and its expansion into cells.
//!
//! A campaign is a JSON document describing a matrix of scenario variants
//! × protocols × session indices. Every point of the matrix is one
//! *cell*: an independent, deterministic simulation run identified by a
//! stable key `"<variant>/<protocol>/<session>"` (the session
//! zero-padded so lexicographic key order is also numeric order). Cells
//! carry everything needed to run them in isolation, which is what makes
//! the executor free to schedule them on any worker in any order.
//!
//! The vendored `serde` has no field attributes, so every optional knob
//! is an `Option<T>` (absent JSON fields deserialize as `None`) and
//! presets/qualities are plain strings validated by [`CampaignSpec::validate`].

use serde::{Deserialize, Serialize};

use omnc::runner::Protocol;
use omnc::scenario::{Quality, Scenario};

/// A complete campaign specification, deserialized from JSON.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (letters, digits, `-`, `_`); names the output files.
    pub name: String,
    /// Scenario preset every variant starts from: `"small_test"`,
    /// `"reduced"` (default), or `"paper"`.
    pub preset: Option<String>,
    /// Scenario variants; each contributes `protocols × sessions` cells.
    pub variants: Vec<VariantSpec>,
    /// Protocols to run in every variant (`"Omnc"`, `"More"`,
    /// `"OldMore"`, `"EtxRouting"`).
    pub protocols: Vec<Protocol>,
    /// The session-index range run for every variant × protocol.
    pub sessions: SessionRange,
    /// Run all sessions *concurrently* on one shared mesh per variant ×
    /// protocol (one multi-session cell, key `"<variant>/<protocol>/multi"`)
    /// instead of as independent per-session cells. Requires
    /// `sessions.start == 0` — the coupled workload always runs sessions
    /// `0..count`.
    pub multi: Option<bool>,
    /// Extra attempts after a panicking cell (default 1).
    pub retries: Option<u32>,
    /// MAC trace capacity per cell (default 200,000 events).
    pub trace_capacity: Option<usize>,
}

/// One scenario variant: a label plus overrides on the preset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantSpec {
    /// Variant label (letters, digits, `-`, `_`); the first key segment.
    pub label: String,
    /// Scenario knobs overriding the preset; absent fields keep it.
    pub overrides: Option<Overrides>,
}

/// Scenario overrides a variant may apply. All optional; `None` keeps
/// the preset value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Overrides {
    /// Deployed node count.
    pub nodes: Option<usize>,
    /// Deployment density (average neighbors in range).
    pub density: Option<f64>,
    /// Link-quality regime: `"Lossy"` or `"High"`.
    pub quality: Option<Quality>,
    /// Minimum session hop count.
    pub hops_min: Option<usize>,
    /// Maximum session hop count.
    pub hops_max: Option<usize>,
    /// Session duration in simulated seconds.
    pub duration: Option<f64>,
    /// Payload block size in bytes (1 = cheap synthetic payloads).
    pub payload_block_size: Option<usize>,
    /// Master scenario seed.
    pub seed: Option<u64>,
}

/// A half-open range of session indices: `start, start+1, ..`, `count`
/// of them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionRange {
    /// First session index.
    pub start: u64,
    /// Number of sessions.
    pub count: u64,
}

/// One expanded matrix point, ready for the executor.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Stable identity: `"<variant>/<protocol>/<session:010>"`, or
    /// `"<variant>/<protocol>/multi"` for a multi-session cell.
    pub key: String,
    /// The fully-resolved scenario of the cell's variant.
    pub scenario: Scenario,
    /// Protocol under test.
    pub protocol: Protocol,
    /// Session index within the scenario (0 for a multi-session cell,
    /// which runs all of them at once).
    pub session: u64,
    /// Whether this cell runs the whole workload concurrently on one
    /// shared mesh ([`omnc::multi::run_multi_cell`]) instead of one
    /// independent session ([`omnc::runner::run_cell`]).
    pub multi: bool,
}

/// The stable identity of the cell `(label, protocol, session)`. Session
/// indices are zero-padded to ten digits so lexicographic ordering of
/// keys equals `(label, protocol, session)` ordering.
pub fn cell_key(label: &str, protocol: Protocol, session: u64) -> String {
    format!("{label}/{}/{session:010}", protocol.name())
}

/// The stable identity of the multi-session cell of `(label, protocol)` —
/// one coupled run of every session on the shared mesh.
pub fn multi_cell_key(label: &str, protocol: Protocol) -> String {
    format!("{label}/{}/multi", protocol.name())
}

fn valid_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

impl CampaignSpec {
    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the parse or validation error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let spec: CampaignSpec =
            serde_json::from_str(text).map_err(|e| format!("invalid campaign spec: {e}"))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the spec for structural problems before any cell runs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !valid_ident(&self.name) {
            return Err(format!(
                "campaign name {:?} must be letters/digits/-/_",
                self.name
            ));
        }
        if let Some(preset) = &self.preset {
            if !matches!(preset.as_str(), "small_test" | "reduced" | "paper") {
                return Err(format!(
                    "unknown preset {preset:?} (small_test | reduced | paper)"
                ));
            }
        }
        if self.variants.is_empty() {
            return Err("campaign needs at least one variant".to_owned());
        }
        for v in &self.variants {
            if !valid_ident(&v.label) {
                return Err(format!(
                    "variant label {:?} must be letters/digits/-/_",
                    v.label
                ));
            }
        }
        let mut labels: Vec<&str> = self.variants.iter().map(|v| v.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        if labels.len() != self.variants.len() {
            return Err("variant labels must be unique".to_owned());
        }
        if self.protocols.is_empty() {
            return Err("campaign needs at least one protocol".to_owned());
        }
        let mut protos = self.protocols.clone();
        protos.sort_by_key(|p| p.name());
        protos.dedup();
        if protos.len() != self.protocols.len() {
            return Err("protocols must be unique".to_owned());
        }
        if self.sessions.count == 0 {
            return Err("sessions.count must be at least 1".to_owned());
        }
        if self.multi() && self.sessions.start != 0 {
            return Err(format!(
                "multi-session campaigns run sessions 0..count concurrently; \
                 sessions.start must be 0, got {}",
                self.sessions.start
            ));
        }
        Ok(())
    }

    /// Whether cells run all sessions concurrently on one shared mesh.
    pub fn multi(&self) -> bool {
        self.multi.unwrap_or(false)
    }

    /// Extra attempts after a panicking cell.
    pub fn retries(&self) -> u32 {
        self.retries.unwrap_or(1)
    }

    /// MAC trace capacity per cell.
    pub fn trace_capacity(&self) -> usize {
        self.trace_capacity.unwrap_or(200_000)
    }

    /// The fully-resolved scenario of one variant.
    pub fn scenario(&self, variant: &VariantSpec) -> Scenario {
        let mut s = match self.preset.as_deref() {
            Some("small_test") => Scenario::small_test(),
            Some("paper") => Scenario::paper(Quality::Lossy),
            _ => Scenario::reduced(Quality::Lossy),
        };
        // Sessions are enumerated by the cell matrix, but keep the
        // scenario's own count coherent for anything that reads it.
        s.sessions = usize::try_from(self.sessions.count).unwrap_or(usize::MAX);
        if let Some(o) = &variant.overrides {
            if let Some(n) = o.nodes {
                s.nodes = n;
            }
            if let Some(d) = o.density {
                s.density = d;
            }
            if let Some(q) = o.quality {
                s.quality = q;
            }
            if let Some(h) = o.hops_min {
                s.hops.0 = h;
            }
            if let Some(h) = o.hops_max {
                s.hops.1 = h;
            }
            if let Some(d) = o.duration {
                s.session.duration = d;
            }
            if let Some(b) = o.payload_block_size {
                s.session.payload_block_size = b;
            }
            if let Some(seed) = o.seed {
                s.seed = seed;
            }
        }
        s
    }

    /// Expands the matrix into cells, sorted by key. The sorted order is
    /// the canonical campaign order: the merge stage emits results this
    /// way no matter how the executor scheduled them.
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for variant in &self.variants {
            let scenario = self.scenario(variant);
            for &protocol in &self.protocols {
                if self.multi() {
                    // One coupled cell runs the whole workload: the
                    // scenario's session count is the matrix count.
                    cells.push(Cell {
                        key: multi_cell_key(&variant.label, protocol),
                        scenario: scenario.clone(),
                        protocol,
                        session: 0,
                        multi: true,
                    });
                    continue;
                }
                for session in self.sessions.start..self.sessions.start + self.sessions.count {
                    cells.push(Cell {
                        key: cell_key(&variant.label, protocol, session),
                        scenario: scenario.clone(),
                        protocol,
                        session,
                        multi: false,
                    });
                }
            }
        }
        cells.sort_by(|a, b| a.key.cmp(&b.key));
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_spec() -> CampaignSpec {
        CampaignSpec::from_json(
            r#"{
                "name": "smoke",
                "preset": "small_test",
                "variants": [
                    {"label": "lossy", "overrides": null},
                    {"label": "high", "overrides": {"quality": "High"}}
                ],
                "protocols": ["EtxRouting", "Omnc"],
                "sessions": {"start": 0, "count": 2}
            }"#,
        )
        .expect("valid spec")
    }

    #[test]
    fn spec_expands_to_a_sorted_cell_matrix() {
        let spec = smoke_spec();
        let cells = spec.cells();
        assert_eq!(cells.len(), 8);
        let keys: Vec<&str> = cells.iter().map(|c| c.key.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert!(keys.contains(&"lossy/OMNC/0000000001"));
        assert!(keys.contains(&"high/ETX/0000000000"));
    }

    #[test]
    fn overrides_apply_on_top_of_the_preset() {
        let spec = smoke_spec();
        let lossy = spec.scenario(&spec.variants[0]);
        let high = spec.scenario(&spec.variants[1]);
        assert_eq!(lossy.quality, Quality::Lossy);
        assert_eq!(high.quality, Quality::High);
        assert_eq!(lossy.nodes, high.nodes);
        assert_eq!(spec.retries(), 1);
    }

    #[test]
    fn multi_collapses_sessions_into_one_cell_per_variant_protocol() {
        let spec = CampaignSpec::from_json(
            r#"{
                "name": "multi",
                "preset": "small_test",
                "variants": [
                    {"label": "lossy", "overrides": null},
                    {"label": "high", "overrides": {"quality": "High"}}
                ],
                "protocols": ["EtxRouting", "Omnc"],
                "sessions": {"start": 0, "count": 3},
                "multi": true
            }"#,
        )
        .expect("valid spec");
        let cells = spec.cells();
        assert_eq!(cells.len(), 4, "one cell per variant x protocol");
        for cell in &cells {
            assert!(cell.multi);
            assert!(cell.key.ends_with("/multi"), "{}", cell.key);
            assert_eq!(cell.scenario.sessions, 3);
        }
        let keys: Vec<&str> = cells.iter().map(|c| c.key.as_str()).collect();
        assert!(keys.contains(&"lossy/OMNC/multi"));
        assert!(keys.contains(&"high/ETX/multi"));
    }

    #[test]
    fn multi_rejects_nonzero_session_start() {
        let err = CampaignSpec::from_json(
            r#"{
                "name": "multi",
                "preset": "small_test",
                "variants": [{"label": "a", "overrides": null}],
                "protocols": ["Omnc"],
                "sessions": {"start": 2, "count": 3},
                "multi": true
            }"#,
        )
        .expect_err("start != 0 with multi");
        assert!(err.contains("sessions.start"), "{err}");
    }

    #[test]
    fn zero_padding_makes_key_order_numeric() {
        let a = cell_key("v", Protocol::Omnc, 2);
        let b = cell_key("v", Protocol::Omnc, 10);
        assert!(a < b, "{a} vs {b}");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        for (json, what) in [
            (
                r#"{"name": "bad name", "variants": [{"label": "a", "overrides": null}], "protocols": ["Omnc"], "sessions": {"start": 0, "count": 1}}"#,
                "name",
            ),
            (
                r#"{"name": "x", "variants": [], "protocols": ["Omnc"], "sessions": {"start": 0, "count": 1}}"#,
                "variant",
            ),
            (
                r#"{"name": "x", "variants": [{"label": "a", "overrides": null}, {"label": "a", "overrides": null}], "protocols": ["Omnc"], "sessions": {"start": 0, "count": 1}}"#,
                "unique",
            ),
            (
                r#"{"name": "x", "variants": [{"label": "a", "overrides": null}], "protocols": [], "sessions": {"start": 0, "count": 1}}"#,
                "protocol",
            ),
            (
                r#"{"name": "x", "variants": [{"label": "a", "overrides": null}], "protocols": ["Omnc"], "sessions": {"start": 0, "count": 0}}"#,
                "count",
            ),
            (
                r#"{"name": "x", "preset": "huge", "variants": [{"label": "a", "overrides": null}], "protocols": ["Omnc"], "sessions": {"start": 0, "count": 1}}"#,
                "preset",
            ),
        ] {
            let err = CampaignSpec::from_json(json).expect_err(what);
            assert!(!err.is_empty(), "{what}");
        }
    }
}
