//! The checkpoint journal: one JSONL line per durably completed cell.
//!
//! A line is appended only *after* the cell's result file has been
//! written and renamed into place, so every journaled key is backed by a
//! readable result. `resume` replays the journal, drops entries whose
//! result file is missing (a crash window, or a by-hand cleanup), and
//! re-runs only what is left. Truncating the journal mid-file — the
//! kill -9 case — simply forgets a suffix of completed cells; re-running
//! them is wasted work, never wrong output, because cells are
//! deterministic.

use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// One journal line: the completed cell and the attempts it took.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalEntry {
    /// The completed cell's key.
    pub key: String,
    /// Attempts the cell needed (1 unless earlier attempts panicked).
    pub attempts: u32,
    /// Wall-clock completion time, milliseconds since the Unix epoch.
    /// `None` on journals from before this field existed; the journal is
    /// never byte-compared and is reset on fresh runs, so the host
    /// timestamp cannot leak into merged artifacts. `status` derives its
    /// cells/s and ETA from the span of these stamps.
    pub wall_ms: Option<u64>,
}

impl JournalEntry {
    /// The current wall clock as a `wall_ms` stamp.
    #[must_use]
    pub fn now_ms() -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
    }
}

/// Append-only writer over the journal file.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`.
    pub fn at(path: &Path) -> Journal {
        Journal {
            path: path.to_path_buf(),
        }
    }

    /// Records `entry` durably: the line is written and flushed before
    /// this returns.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the journal cannot be appended.
    pub fn record(&self, entry: &JournalEntry) -> io::Result<()> {
        let line = serde_json::to_string(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()
    }

    /// Replays the journal into the set of completed cell keys. Missing
    /// file means an empty set; a trailing partial line (torn write) is
    /// skipped rather than treated as corruption.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if an existing journal cannot be read.
    pub fn completed(&self) -> io::Result<BTreeSet<String>> {
        Ok(self.entries()?.into_iter().map(|e| e.key).collect())
    }

    /// Replays the journal's full entries in append order, with the same
    /// torn-tail tolerance as [`Journal::completed`]. Duplicate keys (a
    /// cell re-run after a resume) keep every line, so the wall-clock
    /// span of the returned stamps reflects real work done.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if an existing journal cannot be read.
    pub fn entries(&self) -> io::Result<Vec<JournalEntry>> {
        let file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut entries = Vec::new();
        for line in BufReader::new(file).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<JournalEntry>(&line) {
                Ok(entry) => entries.push(entry),
                Err(_) => break, // torn tail: everything after is unreliable
            }
        }
        Ok(entries)
    }

    /// Removes the journal file (fresh `run`). Missing is fine.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if an existing journal cannot be removed.
    pub fn reset(&self) -> io::Result<()> {
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(name: &str) -> Journal {
        let path = std::env::temp_dir().join(format!("omnc_campaign_journal_{name}.jsonl"));
        let _ = std::fs::remove_file(&path);
        Journal::at(&path)
    }

    #[test]
    fn records_replay_as_a_key_set() {
        let j = temp_journal("replay");
        assert!(j.completed().unwrap().is_empty());
        for (key, attempts) in [("a/OMNC/0000000000", 1), ("a/ETX/0000000001", 2)] {
            j.record(&JournalEntry {
                key: key.to_owned(),
                attempts,
                wall_ms: Some(JournalEntry::now_ms()),
            })
            .unwrap();
        }
        let keys = j.completed().unwrap();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains("a/ETX/0000000001"));
        let entries = j.entries().unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|e| e.wall_ms.is_some()));
        j.reset().unwrap();
        assert!(j.completed().unwrap().is_empty());
    }

    #[test]
    fn entries_without_timestamps_replay_as_none() {
        // Journals written before wall_ms existed parse unchanged.
        let j = temp_journal("legacy");
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&j.path)
            .unwrap();
        f.write_all(b"{\"key\": \"old/OMNC/0000000000\", \"attempts\": 1}\n")
            .unwrap();
        drop(f);
        let entries = j.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key, "old/OMNC/0000000000");
        assert_eq!(entries[0].wall_ms, None);
    }

    #[test]
    fn torn_tail_lines_are_dropped() {
        let j = temp_journal("torn");
        j.record(&JournalEntry {
            key: "ok".to_owned(),
            attempts: 1,
            wall_ms: Some(JournalEntry::now_ms()),
        })
        .unwrap();
        // Simulate a kill mid-append: garbage with no newline.
        let mut f = OpenOptions::new().append(true).open(&j.path).unwrap();
        f.write_all(b"{\"key\": \"half").unwrap();
        drop(f);
        let keys = j.completed().unwrap();
        assert_eq!(keys.len(), 1);
        assert!(keys.contains("ok"));
    }
}
