//! `omnc-campaign` — run, resume, and inspect experiment campaigns.
//!
//! ```sh
//! omnc-campaign run    --spec campaign.json --out out/ --jobs 4
//! omnc-campaign resume --spec campaign.json --out out/ --jobs 4
//! omnc-campaign status --spec campaign.json --out out/
//! omnc-campaign bench  --spec campaign.json --out out/ --jobs 4 --record BENCH.json
//! ```
//!
//! `run` executes the whole matrix from scratch; `resume` keeps the
//! journal and re-runs only cells without a durable result; `status`
//! reports completion without running anything; `bench` times the same
//! campaign at `--jobs 1` and `--jobs N`, checks the merged artifacts
//! are byte-identical, and writes a `BENCH_<date>.json`-style record.
//!
//! Exit codes: 0 success, 1 failed cells or I/O trouble, 2 usage error.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use omnc_campaign::spec::CampaignSpec;
use omnc_campaign::{campaign_status, run_campaign, CampaignOptions, CampaignSummary};
use telemetry::{sample_rss, set_alloc_counting, CountingAlloc, LogLevel, Logger};

// One relaxed atomic load per allocation until --count-allocs enables
// the thread-local counters, so default campaigns run at full speed.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const USAGE: &str = "omnc-campaign — parallel, resumable experiment campaigns

USAGE:
    omnc-campaign run    --spec <file> --out <dir> [--jobs N] [--count-allocs]
                         [--serve ADDR] [--log-level quiet|info|debug]
    omnc-campaign resume --spec <file> --out <dir> [--jobs N] [--count-allocs]
                         [--serve ADDR] [--log-level quiet|info|debug]
    omnc-campaign status --spec <file> --out <dir>
    omnc-campaign bench  --spec <file> --out <dir> [--jobs N] [--record <file>]
                         [--count-allocs]

Campaign specs are JSON matrices of scenario variants x protocols x
session indices; see EXPERIMENTS.md for the schema. `resume` re-runs
only cells the checkpoint journal does not already cover; merged
artifacts are byte-identical for any --jobs and across resumes.
`--serve ADDR` (e.g. 127.0.0.1:9100) starts a read-only observer
thread serving /metrics (Prometheus text), /progress (JSON with ETA
and per-worker state), and /series (worker timelines) for the life of
the run; serving never changes any artifact byte. Each cell runs under
a flight recorder: a panicking cell dumps its last breadcrumbs to
<out>/flight-<cell>.jsonl before the retry machinery takes over.
`--count-allocs` enables allocation counting, adding alloc columns to
the merged span profiles; per-cell RSS samples and campaign peak RSS
always land in a separate memory.json (host-dependent, so never part
of the byte-compared artifacts).";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match real_main(&args) {
        Ok(code) => std::process::exit(code),
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

struct CliArgs {
    spec: CampaignSpec,
    out: PathBuf,
    jobs: usize,
    log: Logger,
    record: Option<PathBuf>,
    serve: Option<String>,
}

fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut spec_path: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut jobs = 1usize;
    let mut level = LogLevel::default();
    let mut record: Option<PathBuf> = None;
    let mut serve: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--spec" => spec_path = Some(PathBuf::from(value("--spec")?)),
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--jobs" => {
                let v = value("--jobs")?;
                jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs must be a positive integer, got {v:?}"))?;
            }
            "--log-level" => {
                let v = value("--log-level")?;
                level = LogLevel::parse(&v)
                    .ok_or_else(|| format!("unknown --log-level {v:?} (quiet|info|debug)"))?;
            }
            "--record" => record = Some(PathBuf::from(value("--record")?)),
            "--serve" => serve = Some(value("--serve")?),
            "--count-allocs" => set_alloc_counting(true),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let spec_path = spec_path.ok_or("--spec is required")?;
    let text = std::fs::read_to_string(&spec_path)
        .map_err(|e| format!("cannot read --spec {}: {e}", spec_path.display()))?;
    let spec =
        CampaignSpec::from_json(&text).map_err(|e| format!("{}: {e}", spec_path.display()))?;
    Ok(CliArgs {
        spec,
        out: out.ok_or("--out is required")?,
        jobs,
        log: Logger::new(level),
        record,
        serve,
    })
}

fn real_main(args: &[String]) -> Result<i32, String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("a subcommand is required".to_owned());
    };
    match command.as_str() {
        "run" => run(&parse_args(rest)?, false),
        "resume" => run(&parse_args(rest)?, true),
        "status" => status(&parse_args(rest)?),
        "bench" => bench(&parse_args(rest)?),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(0)
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn run(cli: &CliArgs, resume: bool) -> Result<i32, String> {
    let summary = run_once(cli, resume, cli.jobs, &cli.out)?;
    if summary.failures.is_empty() {
        Ok(0)
    } else {
        for f in &summary.failures {
            cli.log.error(&format!(
                "cell {} failed after {} attempts: {}",
                f.key, f.attempts, f.message
            ));
        }
        Ok(1)
    }
}

fn run_once(
    cli: &CliArgs,
    resume: bool,
    jobs: usize,
    out: &Path,
) -> Result<CampaignSummary, String> {
    let options = CampaignOptions {
        jobs,
        resume,
        log: cli.log,
        serve: cli.serve.clone(),
    };
    run_campaign(&cli.spec, out, &options)
        .map_err(|e| format!("campaign {} failed: {e}", cli.spec.name))
}

fn status(cli: &CliArgs) -> Result<i32, String> {
    let status = campaign_status(&cli.spec, &cli.out)
        .map_err(|e| format!("cannot read campaign state: {e}"))?;
    println!(
        "campaign {}: {}/{} cells complete",
        cli.spec.name, status.completed, status.total
    );
    if let (Some(rate), Some(eta)) = (status.cells_per_s, status.eta_s) {
        println!("rate {rate:.2} cells/s, eta {eta:.0}s");
    }
    for key in &status.pending {
        println!("pending {key}");
    }
    Ok(i32::from(!status.pending.is_empty()))
}

/// Times the campaign serially and at `--jobs N`, asserts the merged
/// outcomes are byte-identical, and records the figures.
fn bench(cli: &CliArgs) -> Result<i32, String> {
    let cells = cli.spec.cells().len();
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);

    let serial_dir = cli.out.join("jobs1");
    let start = Instant::now();
    let serial = run_once(cli, false, 1, &serial_dir)?;
    let serial_s = start.elapsed().as_secs_f64();

    let parallel_dir = cli.out.join(format!("jobs{}", cli.jobs));
    let start = Instant::now();
    let parallel = run_once(cli, false, cli.jobs, &parallel_dir)?;
    let parallel_s = start.elapsed().as_secs_f64();

    if !(serial.failures.is_empty() && parallel.failures.is_empty()) {
        return Err("bench campaign had failing cells; fix the spec first".to_owned());
    }
    for artifact in [
        "outcomes.jsonl",
        "trace.jsonl",
        "telemetry.json",
        "timeline.json",
        "report.json",
    ] {
        let a = std::fs::read(serial_dir.join(artifact))
            .map_err(|e| format!("missing {artifact} after serial run: {e}"))?;
        let b = std::fs::read(parallel_dir.join(artifact))
            .map_err(|e| format!("missing {artifact} after parallel run: {e}"))?;
        if a != b {
            return Err(format!(
                "{artifact} differs between --jobs 1 and --jobs {}: determinism bug",
                cli.jobs
            ));
        }
    }

    let mut metrics: BTreeMap<String, f64> = BTreeMap::new();
    metrics.insert("campaign/cells".into(), cells as f64);
    metrics.insert("campaign/jobs".into(), cli.jobs as f64);
    metrics.insert("campaign/host_cpus".into(), host_cpus as f64);
    metrics.insert("campaign/serial_s".into(), serial_s);
    metrics.insert("campaign/parallel_s".into(), parallel_s);
    if host_cpus > 1 {
        // On a single-core host --jobs N cannot beat --jobs 1, so the
        // ratio is scheduling noise (~0.99x), not a speedup; recording
        // it would poison any later regression comparison.
        let speedup = serial_s / parallel_s.max(1e-9);
        metrics.insert("campaign/speedup".into(), speedup);
        cli.log.info(&format!(
            "{cells} cells: --jobs 1 {serial_s:.2}s, --jobs {} {parallel_s:.2}s, speedup {speedup:.2}x on {host_cpus} cpu(s); merged artifacts byte-identical",
            cli.jobs
        ));
    } else {
        cli.log.info(&format!(
            "{cells} cells: --jobs 1 {serial_s:.2}s, --jobs {} {parallel_s:.2}s; single-core host, parallel speedup not measurable (campaign/speedup omitted); merged artifacts byte-identical",
            cli.jobs
        ));
    }
    if let Some(rss) = sample_rss() {
        metrics.insert(
            "campaign/peak_rss_mb".into(),
            rss.vm_hwm_bytes as f64 / (1024.0 * 1024.0),
        );
    }
    println!("{:>24} {:>12}", "metric", "value");
    for (name, value) in &metrics {
        println!("{name:>24} {value:>12.3}");
    }

    if let Some(path) = &cli.record {
        let record = BenchRecord {
            bench: format!("campaign-{}", cli.spec.name),
            seed: 0,
            metrics,
        };
        let json = serde_json::to_string(&record).map_err(|e| e.to_string())?;
        std::fs::write(path, json + "\n")
            .map_err(|e| format!("cannot write --record {}: {e}", path.display()))?;
        cli.log.info(&format!("bench record -> {}", path.display()));
    }
    Ok(0)
}

/// Same shape as the `perf_smoke` record, so the `BENCH_<date>.json`
/// trajectory stays uniform.
#[derive(serde::Serialize)]
struct BenchRecord {
    bench: String,
    seed: u64,
    metrics: BTreeMap<String, f64>,
}
