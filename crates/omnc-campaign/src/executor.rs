//! The work-stealing cell executor — the workspace's one sanctioned
//! thread-pool surface (see the `concurrency` rule in `omnc-lint`; the
//! telemetry observer thread in `omnc-telemetry/src/export.rs` is the
//! other sanctioned region).
//!
//! Work items are indices into a caller-owned list. Each worker owns a
//! deque seeded round-robin; when it drains its own it steals from the
//! busiest sibling. Workers run the caller's function under
//! `catch_unwind`, retrying a panicking item a bounded number of times,
//! and stream [`Completion`] records back over a channel; the caller's
//! `on_done` sink runs on the submitting thread, so all journal and file
//! I/O stays single-threaded. Only whole cells run on workers — the
//! simulation crates underneath remain single-threaded and
//! deterministic, which is why scheduling order cannot affect results.
//!
//! Every completion carries the worker index and wall-clock start/finish
//! offsets (seconds since the pool started). That utilization telemetry
//! feeds the live `/progress` board and the `workers.json` artifact; it
//! is host-dependent by nature, which is exactly why it rides in the
//! completion record and never inside the item results themselves.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

/// Why an item failed: every attempt panicked.
#[derive(Debug, Clone)]
pub struct ItemError {
    /// Attempts made (always `retries + 1`).
    pub attempts: u32,
    /// The last panic's payload, stringified.
    pub message: String,
}

/// Outcome of one item: the value and the attempts it took, or the error
/// after the retry budget ran out.
pub type ItemResult<T> = Result<(T, u32), ItemError>;

/// One finished item as reported to `on_done`.
#[derive(Debug)]
pub struct Completion<T> {
    /// Index of the item in the caller's list.
    pub item: usize,
    /// Worker thread (0-based) that ran the final attempt.
    pub worker: usize,
    /// Wall seconds from pool start to the first attempt's start.
    pub started_s: f64,
    /// Wall seconds from pool start to the last attempt's end.
    pub finished_s: f64,
    /// The item's value (with attempt count) or its terminal error.
    pub result: ItemResult<T>,
}

/// Runs `run(item, worker)` for `item` in `0..items` across `jobs`
/// worker threads and feeds every completed item to `on_done` on the
/// calling thread, in completion order. Panics inside `run` are caught
/// and retried up to `retries` extra times; a still-panicking item
/// becomes an [`ItemError`] without affecting any other item.
pub fn run_parallel<T, F, D>(items: usize, jobs: usize, retries: u32, run: F, mut on_done: D)
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
    D: FnMut(Completion<T>),
{
    let jobs = jobs.clamp(1, items.max(1));
    let epoch = Instant::now();
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((w..items).step_by(jobs).collect()))
        .collect();
    let (tx, rx) = mpsc::channel::<Completion<T>>();
    thread::scope(|scope| {
        for w in 0..jobs {
            let tx = tx.clone();
            let deques = &deques;
            let run = &run;
            scope.spawn(move || {
                while let Some(item) = next_item(deques, w) {
                    let started_s = epoch.elapsed().as_secs_f64();
                    let result = run_with_retry(run, item, w, retries);
                    let done = Completion {
                        item,
                        worker: w,
                        started_s,
                        finished_s: epoch.elapsed().as_secs_f64(),
                        result,
                    };
                    if tx.send(done).is_err() {
                        break; // receiver gone: nothing left to report to
                    }
                }
            });
        }
        drop(tx);
        while let Ok(done) = rx.recv() {
            on_done(done);
        }
    });
}

/// Pops from the worker's own deque, else steals the back half entry of
/// the fullest sibling. `None` only when every deque is empty — all
/// items are claimed up front, so that means the work is done.
fn next_item(deques: &[Mutex<VecDeque<usize>>], own: usize) -> Option<usize> {
    if let Some(item) = lock(&deques[own]).pop_front() {
        return Some(item);
    }
    let (_, victim) = deques
        .iter()
        .enumerate()
        .filter(|&(w, _)| w != own)
        .max_by_key(|(_, d)| lock(d).len())?;
    lock(victim).pop_back()
}

fn lock<'a>(m: &'a Mutex<VecDeque<usize>>) -> std::sync::MutexGuard<'a, VecDeque<usize>> {
    // A worker panicking while holding this lock is impossible: deque
    // operations cannot panic, and the caller's function runs unlocked.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn run_with_retry<T, F: Fn(usize, usize) -> T>(
    run: &F,
    item: usize,
    worker: usize,
    retries: u32,
) -> ItemResult<T> {
    let mut attempts = 0;
    loop {
        attempts += 1;
        match catch_unwind(AssertUnwindSafe(|| run(item, worker))) {
            Ok(value) => return Ok((value, attempts)),
            Err(payload) => {
                if attempts > retries {
                    return Err(ItemError {
                        attempts,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
    }
}

/// Extracts the conventional `&str` / `String` panic payloads.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn all_items_complete_exactly_once() {
        for jobs in [1, 2, 4, 7] {
            let mut seen = vec![0u32; 23];
            run_parallel(
                23,
                jobs,
                0,
                |i, _w| i * 2,
                |done: Completion<usize>| {
                    let (v, attempts) = done.result.expect("no panics");
                    assert_eq!(v, done.item * 2);
                    assert_eq!(attempts, 1);
                    assert!(done.worker < jobs, "worker index in range");
                    assert!(done.finished_s >= done.started_s, "monotone attempt window");
                    seen[done.item] += 1;
                },
            );
            assert!(seen.iter().all(|&c| c == 1), "jobs={jobs}: {seen:?}");
        }
    }

    #[test]
    fn panicking_items_retry_then_fail_in_isolation() {
        let calls = AtomicU32::new(0);
        let mut ok = Vec::new();
        let mut failed = Vec::new();
        run_parallel(
            6,
            3,
            2,
            |i, _w| {
                calls.fetch_add(1, Ordering::Relaxed);
                assert!(i != 4, "cell 4 always dies");
                i
            },
            |done| match done.result {
                Ok((v, _)) => ok.push(v),
                Err(e) => failed.push((done.item, e)),
            },
        );
        ok.sort_unstable();
        assert_eq!(ok, [0, 1, 2, 3, 5]);
        assert_eq!(failed.len(), 1);
        let (idx, err) = &failed[0];
        assert_eq!(*idx, 4);
        assert_eq!(err.attempts, 3, "retries + 1 attempts");
        assert!(err.message.contains("cell 4"), "{}", err.message);
        assert_eq!(calls.load(Ordering::Relaxed), 5 + 3);
    }

    #[test]
    fn transient_panics_succeed_within_the_retry_budget() {
        let calls = AtomicU32::new(0);
        let mut attempts_seen = 0;
        run_parallel(
            1,
            1,
            3,
            |i, _w| {
                // Fails twice, then succeeds.
                assert!(calls.fetch_add(1, Ordering::Relaxed) >= 2, "warming up");
                i
            },
            |done: Completion<usize>| {
                let (_, attempts) = done.result.expect("third attempt succeeds");
                attempts_seen = attempts;
            },
        );
        assert_eq!(attempts_seen, 3);
    }

    #[test]
    fn zero_items_and_oversized_job_counts_are_fine() {
        run_parallel(0, 8, 0, |i, _w| i, |_done| unreachable!("no items"));
        let mut n = 0;
        run_parallel(2, 64, 0, |i, _w| i, |_done| n += 1);
        assert_eq!(n, 2);
    }

    #[test]
    fn completions_carry_the_final_attempts_worker() {
        // Single worker: every completion must name worker 0 and report
        // windows relative to the same pool epoch.
        let mut finishes = Vec::new();
        run_parallel(
            3,
            1,
            0,
            |i, w| {
                assert_eq!(w, 0);
                i
            },
            |done: Completion<usize>| {
                assert_eq!(done.worker, 0);
                finishes.push(done.finished_s);
            },
        );
        assert_eq!(finishes.len(), 3);
        assert!(finishes.windows(2).all(|w| w[0] <= w[1]));
    }
}
