//! End-to-end campaign properties promised by the subsystem: merged
//! artifacts are byte-identical for any `--jobs`, resume re-runs only
//! cells the journal does not durably cover, and a panicking cell is
//! retried and isolated without poisoning the rest of the matrix.

use std::fs;
use std::path::{Path, PathBuf};

use omnc_campaign::spec::CampaignSpec;
use omnc_campaign::{run_campaign, CampaignOptions};
use telemetry::{LogLevel, Logger};

const ARTIFACTS: [&str; 5] = [
    "outcomes.jsonl",
    "trace.jsonl",
    "telemetry.json",
    "timeline.json",
    "report.json",
];

fn temp_out(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("omnc_campaign_it_{}_{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn options(jobs: usize, resume: bool) -> CampaignOptions {
    CampaignOptions {
        jobs,
        resume,
        log: Logger::new(LogLevel::Quiet),
        serve: None,
    }
}

fn smoke_spec() -> CampaignSpec {
    CampaignSpec::from_json(include_str!("../specs/smoke.json")).expect("shipped spec is valid")
}

fn read_artifacts(dir: &Path) -> Vec<Vec<u8>> {
    ARTIFACTS
        .iter()
        .map(|name| {
            fs::read(dir.join(name))
                .unwrap_or_else(|e| panic!("missing artifact {name} in {}: {e}", dir.display()))
        })
        .collect()
}

#[test]
fn merged_artifacts_are_byte_identical_across_job_counts() {
    let spec = smoke_spec();
    let serial_dir = temp_out("jobs1");
    let parallel_dir = temp_out("jobs4");

    let serial = run_campaign(&spec, &serial_dir, &options(1, false)).expect("serial run");
    let parallel = run_campaign(&spec, &parallel_dir, &options(4, false)).expect("parallel run");
    assert_eq!(serial.total, 8);
    assert_eq!(serial.ran, 8);
    assert!(serial.merged && parallel.merged);
    assert!(serial.failures.is_empty() && parallel.failures.is_empty());

    let a = read_artifacts(&serial_dir);
    let b = read_artifacts(&parallel_dir);
    for ((name, left), right) in ARTIFACTS.iter().zip(&a).zip(&b) {
        assert_eq!(left, right, "{name} differs between --jobs 1 and --jobs 4");
    }
    // The merged outcomes line up with the sorted cell keys.
    let outcomes = String::from_utf8(a[0].clone()).expect("utf-8");
    let keys: Vec<String> = spec.cells().iter().map(|c| c.key.clone()).collect();
    for (line, key) in outcomes.lines().zip(&keys) {
        assert!(line.contains(key), "{line} should be the {key} record");
    }
    assert_eq!(outcomes.lines().count(), keys.len());

    // Per-cell result files (which carry each cell's timeline) byte-match
    // too, and every cell actually recorded dynamics series scoped by its
    // own key.
    for key in &keys {
        let name = key.replace('/', "__") + ".json";
        let left = fs::read(serial_dir.join("cells").join(&name)).expect("serial cell file");
        let right = fs::read(parallel_dir.join("cells").join(&name)).expect("parallel cell file");
        assert_eq!(left, right, "cell {key} differs between --jobs 1 and 4");
        let text = String::from_utf8(left).expect("utf-8");
        assert!(
            text.contains(&format!("\"{key}/")),
            "cell {key} should record series scoped by its own key"
        );
    }
    // The merged timeline is the disjoint union of the cells' series.
    let merged = String::from_utf8(a[3].clone()).expect("utf-8");
    for key in &keys {
        assert!(
            merged.contains(&format!("\"{key}/")),
            "merged timeline.json should keep cell {key}'s series"
        );
    }

    let _ = fs::remove_dir_all(serial_dir);
    let _ = fs::remove_dir_all(parallel_dir);
}

#[test]
fn multi_session_campaign_is_deterministic_across_job_counts() {
    // The committed multi-session smoke: every cell runs its variant's
    // whole workload (3 coupled sessions on one shared mesh), so this
    // extends the byte-identical contract to the coupled runner.
    let spec = CampaignSpec::from_json(include_str!("../specs/multi-smoke.json"))
        .expect("shipped multi spec is valid");
    let serial_dir = temp_out("multi_jobs1");
    let parallel_dir = temp_out("multi_jobs3");

    let serial = run_campaign(&spec, &serial_dir, &options(1, false)).expect("serial run");
    let parallel = run_campaign(&spec, &parallel_dir, &options(3, false)).expect("parallel run");
    assert_eq!(serial.total, 4, "one coupled cell per variant x protocol");
    assert!(serial.merged && parallel.merged);
    assert!(serial.failures.is_empty() && parallel.failures.is_empty());

    let a = read_artifacts(&serial_dir);
    let b = read_artifacts(&parallel_dir);
    for ((name, left), right) in ARTIFACTS.iter().zip(&a).zip(&b) {
        assert_eq!(left, right, "{name} differs between --jobs 1 and --jobs 3");
    }

    // Every outcome line carries the coupled multi-session record with
    // all three sessions, and the concatenated trace still parses as
    // one SessionStart/SessionEnd stream per session per cell.
    let outcomes = String::from_utf8(a[0].clone()).expect("utf-8");
    assert_eq!(outcomes.lines().count(), 4);
    for line in outcomes.lines() {
        assert!(line.contains("/multi\""), "{line}");
        assert!(line.contains("\"multi\":{"), "{line}");
        assert!(line.contains("\"sessions_completed\""), "{line}");
        assert!(line.contains("\"airtime_share\""), "{line}");
    }
    let trace = String::from_utf8(a[1].clone()).expect("utf-8");
    let starts = trace.matches("\"SessionStart\"").count();
    let ends = trace.matches("\"SessionEnd\"").count();
    assert_eq!(starts, 12, "3 sessions x 4 cells open a stream each");
    assert_eq!(ends, starts);

    let _ = fs::remove_dir_all(serial_dir);
    let _ = fs::remove_dir_all(parallel_dir);
}

#[test]
fn serving_the_observer_never_changes_an_artifact_byte() {
    // The live plane is strictly read-only: running the same seeded
    // campaign with and without `--serve` must merge byte-identical
    // artifacts. Port 0 lets the OS pick a free port.
    let spec = smoke_spec();
    let plain_dir = temp_out("noserve");
    let served_dir = temp_out("served");

    let plain = run_campaign(&spec, &plain_dir, &options(2, false)).expect("plain run");
    let mut serving = options(2, false);
    serving.serve = Some("127.0.0.1:0".to_owned());
    let served = run_campaign(&spec, &served_dir, &serving).expect("served run");
    assert!(plain.merged && served.merged);
    assert!(plain.failures.is_empty() && served.failures.is_empty());

    let a = read_artifacts(&plain_dir);
    let b = read_artifacts(&served_dir);
    for ((name, left), right) in ARTIFACTS.iter().zip(&a).zip(&b) {
        assert_eq!(left, right, "{name} differs with the observer serving");
    }
    // Worker-utilization telemetry rides in its own artifact (it is
    // host-dependent, like memory.json), present with or without serving.
    for dir in [&plain_dir, &served_dir] {
        let workers = fs::read_to_string(dir.join("workers.json")).expect("workers.json");
        assert!(workers.contains("w00/busy_s"), "{workers}");
    }

    let _ = fs::remove_dir_all(plain_dir);
    let _ = fs::remove_dir_all(served_dir);
}

#[test]
fn resume_reruns_only_cells_the_journal_does_not_cover() {
    let spec = smoke_spec();
    let dir = temp_out("resume");
    let first = run_campaign(&spec, &dir, &options(2, false)).expect("fresh run");
    assert_eq!(first.ran, 8);
    let fresh = read_artifacts(&dir);

    // Simulate a kill after three journaled cells: keep a prefix of the
    // journal. Every cell file still exists, but unjournaled cells do
    // not count as durable and must re-run.
    let journal_path = dir.join("journal.jsonl");
    let journal = fs::read_to_string(&journal_path).expect("journal exists");
    let keep: Vec<&str> = journal.lines().take(3).collect();
    fs::write(&journal_path, keep.join("\n") + "\n").expect("truncate journal");

    let resumed = run_campaign(&spec, &dir, &options(2, true)).expect("resumed run");
    assert_eq!(resumed.skipped, 3, "journaled prefix is not re-run");
    assert_eq!(resumed.ran, 5, "exactly the unjournaled cells re-run");
    assert!(resumed.merged);

    let after = read_artifacts(&dir);
    for ((name, left), right) in ARTIFACTS.iter().zip(&fresh).zip(&after) {
        assert_eq!(left, right, "{name} changed across kill-and-resume");
    }
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn panicking_cells_are_retried_isolated_and_resumable() {
    // The `bad` variant cannot satisfy its hop constraint (a 10-node
    // deployment has no 9-hop sessions), so its cell panics
    // deterministically on every attempt.
    let broken = CampaignSpec::from_json(
        r#"{
            "name": "isolation",
            "preset": "small_test",
            "variants": [
                {"label": "good", "overrides": {"duration": 2.0, "payload_block_size": 1}},
                {"label": "bad", "overrides": {"nodes": 10, "hops_min": 9, "hops_max": 9}}
            ],
            "protocols": ["Omnc"],
            "sessions": {"start": 0, "count": 1},
            "retries": 1
        }"#,
    )
    .expect("valid spec");
    let dir = temp_out("isolation");

    let summary = run_campaign(&broken, &dir, &options(2, false)).expect("run completes");
    assert_eq!(summary.total, 2);
    assert_eq!(summary.ran, 1, "the good cell still completes");
    assert!(!summary.merged, "a failed cell blocks the merge");
    assert_eq!(summary.failures.len(), 1);
    let failure = &summary.failures[0];
    assert_eq!(failure.key, "bad/OMNC/0000000000");
    assert_eq!(failure.attempts, 2, "retries + 1 attempts");
    assert!(!failure.message.is_empty());
    assert!(
        omnc_campaign::merge::cell_path(&dir, "good/OMNC/0000000000").is_file(),
        "the good cell's result survives the bad cell"
    );
    assert!(!dir.join("outcomes.jsonl").exists());

    // The doomed cell left its black box: a flight dump whose header
    // names the cell and carries the panic message, with the run's tail
    // breadcrumbs behind it.
    let flight = omnc_campaign::flight_path(&dir, "bad/OMNC/0000000000");
    let dump = fs::read_to_string(&flight).expect("panicking cell wrote a flight dump");
    let header = dump.lines().next().expect("header line");
    assert!(header.contains("\"bad/OMNC/0000000000\""), "{header}");
    assert!(
        header.contains("\"panic\":\""),
        "panic message recorded: {header}"
    );
    assert!(
        dump.contains("cell/start") && dump.contains("protocol=OMNC session=0"),
        "tail breadcrumbs survive: {dump}"
    );
    // The healthy cell never writes one.
    assert!(!omnc_campaign::flight_path(&dir, "good/OMNC/0000000000").exists());

    // Fix the bad variant (same label, so the same cell key) and resume:
    // only the failed cell runs, and the campaign merges.
    let fixed = CampaignSpec::from_json(
        r#"{
            "name": "isolation",
            "preset": "small_test",
            "variants": [
                {"label": "good", "overrides": {"duration": 2.0, "payload_block_size": 1}},
                {"label": "bad", "overrides": {"quality": "High", "duration": 2.0, "payload_block_size": 1}}
            ],
            "protocols": ["Omnc"],
            "sessions": {"start": 0, "count": 1},
            "retries": 1
        }"#,
    )
    .expect("valid spec");
    let resumed = run_campaign(&fixed, &dir, &options(2, true)).expect("resumed run");
    assert_eq!(resumed.skipped, 1);
    assert_eq!(resumed.ran, 1);
    assert!(resumed.failures.is_empty());
    assert!(resumed.merged);
    assert!(dir.join("outcomes.jsonl").is_file());
    // The stale black box from the failed attempt is gone now that the
    // cell completed — dumps only describe crashes that still stand.
    assert!(!flight.exists(), "stale flight dump cleared on success");
    let _ = fs::remove_dir_all(dir);
}
