//! Property-based tests spanning crate boundaries: random topologies and
//! coding parameters exercise invariants that no single crate can check on
//! its own.

use omnc::net_topo::deploy::Deployment;
use omnc::net_topo::graph::{Link, NodeId, Topology};
use omnc::net_topo::phy::Phy;
use omnc::net_topo::select::{count_paths, select_forwarders};
use omnc::omnc_opt::{lp, SUnicast};
use omnc::rlnc::{Decoder, Encoder, Generation, GenerationConfig, GenerationId, Recoder};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generation survives an arbitrary lossy relay chain: as long as
    /// packets keep flowing, the destination decodes the exact source bytes.
    #[test]
    fn rlnc_survives_arbitrary_relay_chains(
        blocks in 2usize..12,
        block_size in 1usize..64,
        relays in 1usize..4,
        loss in 0.05f64..0.6,
        seed in any::<u64>(),
    ) {
        let cfg = GenerationConfig::new(blocks, block_size).expect("positive dims");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<u8> = (0..cfg.payload_len()).map(|i| (i as u8) ^ 0x3c).collect();
        let generation = Generation::from_bytes(GenerationId::new(0), cfg, &data).expect("sized");
        let encoder = Encoder::new(&generation);
        let mut chain: Vec<Recoder> =
            (0..relays).map(|_| Recoder::new(GenerationId::new(0), cfg)).collect();
        let mut dst = Decoder::new(GenerationId::new(0), cfg);

        let mut guard = 0;
        while !dst.is_complete() {
            guard += 1;
            prop_assert!(guard < 100_000, "decode did not finish");
            // Source feeds the first relay; each relay feeds the next.
            let p = encoder.emit(&mut rng);
            if rng.gen_bool(1.0 - loss) {
                let _ = chain[0].absorb(&p);
            }
            for i in 0..relays {
                if chain[i].rank() == 0 {
                    continue;
                }
                let out = chain[i].emit(&mut rng).expect("rank > 0");
                if rng.gen_bool(1.0 - loss) {
                    if i + 1 < relays {
                        let _ = chain[i + 1].absorb(&out);
                    } else {
                        let _ = dst.absorb(&out);
                    }
                }
            }
        }
        prop_assert_eq!(dst.recover().expect("complete"), data);
    }

    /// Node selection on random deployments always yields an acyclic
    /// subgraph whose sUnicast LP is solvable with positive throughput.
    #[test]
    fn selection_yields_solvable_instances(seed in 0u64..500) {
        let phy = Phy::paper_lossy();
        let topo = Deployment::random(25, 6.0, &phy, seed).into_topology();
        let (s, d) = topo.farthest_pair();
        let sel = select_forwarders(&topo, s, d);
        prop_assert!(sel.contains(s) && sel.contains(d));
        prop_assert!(sel.path_count() >= 1);
        let problem = SUnicast::from_selection(&topo, &sel, 1.0);
        let exact = lp::solve_exact(&problem).expect("selection instances are solvable");
        prop_assert!(exact.gamma > 0.0);
        // One broadcast transmission can be usefully received by several
        // forwarders at once (the coupling constraint is per-link), so the
        // true capacity bound is C * sum of the source's out-link delivery
        // probabilities, not C itself.
        let broadcast_gain: f64 = problem
            .out_links(problem.src())
            .iter()
            .map(|&e| problem.link(e).p)
            .sum();
        prop_assert!(
            exact.gamma <= broadcast_gain + 1e-6,
            "throughput cannot exceed the source's broadcast capacity: {} > {}",
            exact.gamma,
            broadcast_gain
        );
        prop_assert_eq!(
            problem.feasibility_violation(&exact.b, &exact.x, exact.gamma, 1e-6),
            None
        );
    }

    /// The optimum never improves when every link gets strictly worse.
    #[test]
    fn degrading_links_cannot_raise_the_optimum(
        seed in 0u64..200,
        factor in 0.3f64..0.95,
    ) {
        let phy = Phy::paper_lossy();
        let topo = Deployment::random(20, 6.0, &phy, seed).into_topology();
        let (s, d) = topo.farthest_pair();
        let sel = select_forwarders(&topo, s, d);
        let base = lp::solve_exact(&SUnicast::from_selection(&topo, &sel, 1.0))
            .expect("solvable")
            .gamma;

        let degraded_links: Vec<Link> = topo
            .links()
            .map(|l| Link { p: (l.p * factor).max(1e-3), ..l })
            .collect();
        let degraded = Topology::from_links(topo.len(), degraded_links).expect("valid");
        let sel2 = select_forwarders(&degraded, s, d);
        let worse = lp::solve_exact(&SUnicast::from_selection(&degraded, &sel2, 1.0))
            .expect("solvable")
            .gamma;
        prop_assert!(worse <= base + 1e-6, "worse links improved γ: {} > {}", worse, base);
    }
}

/// Non-proptest cross-crate check: DAG path counting is consistent between
/// the selection and an independent enumeration on a small instance.
#[test]
fn path_count_matches_exhaustive_enumeration() {
    let mut links = Vec::new();
    // A 2x2 grid-of-diamonds: s → {a, b} → m → {c, d} → t.
    let ids: Vec<NodeId> = (0..6).map(NodeId::new).collect();
    let (s, a, b, m, c, t) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
    for (u, v) in [(s, a), (s, b), (a, m), (b, m), (m, c), (m, t)] {
        links.push(Link {
            from: u,
            to: v,
            p: 0.5,
        });
    }
    // c must be strictly closer to t than m is, or node selection drops the
    // m → c link (distances must strictly decrease along selected links).
    links.push(Link {
        from: c,
        to: t,
        p: 0.9,
    });
    let topo = Topology::from_links(6, links).expect("valid");
    // Paths s→t: s{a|b}m then (mt | mct) = 2 × 2 = 4.
    assert_eq!(count_paths(&topo, s, t), 4);
    let sel = select_forwarders(&topo, s, t);
    assert_eq!(sel.path_count(), 4);
}

/// The RLNC wire format survives a trip through serialization even after
/// relay re-encoding (cross-crate: rlnc × serde layout).
#[test]
fn recoded_packets_roundtrip_the_wire_format() {
    let cfg = GenerationConfig::new(6, 32).expect("valid");
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let data = vec![7u8; cfg.payload_len()];
    let generation = Generation::from_bytes(GenerationId::new(9), cfg, &data).expect("sized");
    let encoder = Encoder::new(&generation);
    let mut relay = Recoder::new(GenerationId::new(9), cfg);
    for _ in 0..4 {
        relay.absorb(&encoder.emit(&mut rng)).expect("well-formed");
    }
    let packet = relay.emit(&mut rng).expect("rank > 0");
    let bytes = packet.to_bytes();
    let parsed = omnc::rlnc::CodedPacket::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(parsed, packet);
}
