//! Cross-crate validation of the optimization stack: the distributed
//! rate-control algorithm (Table 1) against the exact simplex solution of
//! sUnicast, on hand-built and random instances.

use omnc::net_topo::deploy::Deployment;
use omnc::net_topo::graph::{Link, NodeId, Topology};
use omnc::net_topo::phy::Phy;
use omnc::net_topo::select::select_forwarders;
use omnc::omnc_opt::distributed::DistributedRateControl;
use omnc::omnc_opt::{default_portfolio, lp, run_best, RateControl, RateControlParams, SUnicast};

/// In-range-only instances (opportunistic tail disabled): the regime the
/// paper's optimality discussion covers. With tail links, the LP optimum is
/// inflated by modeled parallel flow over many weak links that the
/// path-based distributed algorithm cannot realize; the protocol-level
/// consequences of the tail are covered by the protocol_comparison tests.
fn random_instance(nodes: usize, seed: u64) -> SUnicast {
    let phy = Phy::paper_lossy().with_opportunistic_cutoff(1.0);
    let topo = Deployment::random(nodes, 6.0, &phy, seed).into_topology();
    let (s, d) = topo.farthest_pair();
    let sel = select_forwarders(&topo, s, d);
    SUnicast::from_selection(&topo, &sel, 1e5)
}

#[test]
fn distributed_never_beats_and_usually_approaches_the_lp() {
    let mut ratios = Vec::new();
    for seed in 0..8 {
        let problem = random_instance(30, 1000 + seed);
        let exact = lp::solve_exact(&problem).expect("solvable");
        let alloc = run_best(&problem, &default_portfolio());
        let ratio = alloc.throughput() / exact.gamma;
        assert!(
            ratio <= 1.0 + 1e-9,
            "seed {seed}: feasible allocation beat the optimum"
        );
        ratios.push(ratio);
    }
    let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(mean > 0.7, "mean optimality ratio {mean}: {ratios:?}");
}

#[test]
fn recovered_allocations_are_always_feasible() {
    for seed in 0..5 {
        let problem = random_instance(25, 2000 + seed);
        let alloc = RateControl::new(&problem).run();
        assert_eq!(
            problem.feasibility_violation(
                alloc.broadcast_rates(),
                alloc.link_rates(),
                alloc.throughput(),
                1e-6
            ),
            None,
            "seed {seed}"
        );
    }
}

#[test]
fn lp_solution_satisfies_every_paper_constraint() {
    for seed in 0..5 {
        let problem = random_instance(25, 3000 + seed);
        let exact = lp::solve_exact(&problem).expect("solvable");
        assert_eq!(
            problem.feasibility_violation(&exact.b, &exact.x, exact.gamma, 1e-6),
            None,
            "seed {seed}"
        );
        assert!(
            exact.gamma > 0.0,
            "seed {seed}: zero optimum on a connected instance"
        );
    }
}

#[test]
fn message_passing_agents_match_the_centralized_driver() {
    let problem = random_instance(20, 4321);
    let params = RateControlParams::default();
    let central = RateControl::with_params(&problem, params).run();
    let mut agents = DistributedRateControl::new(&problem, &params);
    agents.run(central.iterations());
    let distributed = agents.allocation();
    let rel =
        (distributed.throughput() - central.throughput()).abs() / central.throughput().max(1e-9);
    assert!(
        rel < 0.1,
        "distributed {} vs centralized {}",
        distributed.throughput(),
        central.throughput()
    );
}

#[test]
fn paper_convergence_speed_is_reproduced() {
    // Sec. 5: "The average number of iterations required ... is 91."
    // Our stopping rule lands in the same few-dozen-to-few-hundred regime.
    let mut total = 0usize;
    let n = 6;
    for seed in 0..n {
        let problem = random_instance(30, 5000 + seed);
        let alloc = RateControl::new(&problem).run();
        assert!(alloc.converged(), "seed {seed} hit the iteration cap");
        total += alloc.iterations();
    }
    let avg = total as f64 / n as f64;
    assert!(
        (20.0..=400.0).contains(&avg),
        "average iterations {avg} far from the paper's ~91"
    );
}

#[test]
fn fig1_sample_topology_converges_to_the_optimum_region() {
    // The Fig. 1 setting: capacity 1e5 B/s, tagged link probabilities.
    let links = vec![
        Link {
            from: NodeId::new(0),
            to: NodeId::new(1),
            p: 0.8,
        },
        Link {
            from: NodeId::new(0),
            to: NodeId::new(2),
            p: 0.5,
        },
        Link {
            from: NodeId::new(1),
            to: NodeId::new(3),
            p: 0.6,
        },
        Link {
            from: NodeId::new(2),
            to: NodeId::new(3),
            p: 0.9,
        },
    ];
    let topo = Topology::from_links(4, links).expect("valid");
    let sel = select_forwarders(&topo, NodeId::new(0), NodeId::new(3));
    let problem = SUnicast::from_selection(&topo, &sel, 1e5);
    let exact = lp::solve_exact(&problem).expect("solvable");
    let (alloc, trace) = RateControl::new(&problem).with_trace().run_traced();
    // Converges "within a few rounds of iterations" to a near-optimal rate.
    assert!(alloc.throughput() / exact.gamma > 0.9);
    // The recovered trajectory settles: late iterates change slowly.
    let n = trace.b_recovered.len();
    assert!(n >= 10);
    let late_delta: f64 = trace.b_recovered[n - 1]
        .iter()
        .zip(&trace.b_recovered[n - 2])
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    // Tail-window averaging restarts introduce small jumps; the late
    // movement must still be a tiny fraction of the capacity.
    assert!(late_delta < 0.05 * 1e5, "late movement {late_delta}");
}
