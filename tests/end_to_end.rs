//! End-to-end integration: full-payload OMNC sessions over random lossy
//! meshes, exercising every crate in the workspace at once — deployment,
//! PHY, node selection, rate control, Drift, and the RLNC codec with
//! payload verification.

use omnc::runner::{run_session, Protocol};
use omnc::scenario::Scenario;
use omnc::session::SessionConfig;

#[test]
fn omnc_delivers_verified_data_over_a_random_mesh() {
    let scenario = Scenario::small_test();
    let (topology, src, dst) = scenario.build_session(0);
    assert_eq!(
        scenario.session.payload_block_size, scenario.session.wire_block_size,
        "small_test must run the full coding pipeline"
    );
    let out = run_session(&topology, src, dst, Protocol::Omnc, &scenario.session, 17);
    assert!(out.generations_decoded >= 1, "no generation decoded");
    assert_eq!(out.verification_failures, 0, "payload corruption detected");
    assert!(out.throughput > 0.0);
}

#[test]
fn every_protocol_completes_on_every_session_of_the_scenario() {
    let scenario = Scenario::small_test();
    for k in 0..scenario.sessions as u64 {
        let (topology, src, dst) = scenario.build_session(k);
        for protocol in Protocol::ALL {
            let out = run_session(&topology, src, dst, protocol, &scenario.session, k);
            assert!(
                out.throughput >= 0.0 && out.throughput.is_finite(),
                "{} on session {k}",
                protocol.name()
            );
            assert_eq!(out.verification_failures, 0);
        }
    }
}

#[test]
fn coefficient_only_mode_matches_full_mode_behaviour() {
    // Large benches carry 1-byte payloads while charging full wire bytes;
    // the protocol dynamics (decoded generations, throughput) must be the
    // same as with real payloads since only charged bytes drive the MAC.
    let scenario = Scenario::small_test();
    let (topology, src, dst) = scenario.build_session(1);
    let full = scenario.session;
    let light = SessionConfig {
        payload_block_size: 1,
        ..full
    };
    let a = run_session(&topology, src, dst, Protocol::Omnc, &full, 23);
    let b = run_session(&topology, src, dst, Protocol::Omnc, &light, 23);
    assert_eq!(a.generations_decoded, b.generations_decoded);
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.packet_counts, b.packet_counts);
}

#[test]
fn longer_sessions_decode_more_generations() {
    let scenario = Scenario::small_test();
    let (topology, src, dst) = scenario.build_session(2);
    let short = SessionConfig {
        duration: 30.0,
        ..scenario.session
    };
    let long = SessionConfig {
        duration: 120.0,
        ..scenario.session
    };
    let a = run_session(&topology, src, dst, Protocol::Omnc, &short, 29);
    let b = run_session(&topology, src, dst, Protocol::Omnc, &long, 29);
    assert!(
        b.generations_decoded >= a.generations_decoded,
        "long {} < short {}",
        b.generations_decoded,
        a.generations_decoded
    );
    assert!(b.generations_decoded > 0);
}

#[test]
fn high_quality_links_speed_up_every_protocol() {
    use omnc::scenario::Quality;
    let mut lossy = Scenario::small_test();
    lossy.nodes = 60;
    let mut high = lossy.clone();
    high.quality = Quality::High;

    let (tl, s, d) = lossy.build_session(4);
    let th = high.build_topology();
    for protocol in [Protocol::Omnc, Protocol::EtxRouting] {
        let out_l = run_session(&tl, s, d, protocol, &lossy.session, 31);
        let out_h = run_session(&th, s, d, protocol, &high.session, 31);
        assert!(
            out_h.throughput >= out_l.throughput * 0.8,
            "{}: high-quality {} should not collapse below lossy {}",
            protocol.name(),
            out_h.throughput,
            out_l.throughput
        );
    }
}
