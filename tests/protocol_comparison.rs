//! Reduced-scale reproduction of the paper's headline comparisons, run as a
//! test: the *ordering* of the protocols must match Sec. 5 even at small
//! scale.
//!
//! These tests run a handful of sessions (the bench binaries run the full
//! sweeps), so they assert orderings and coarse magnitudes, not the exact
//! paper numbers.

use omnc::metrics::Cdf;
use omnc::runner::{run_session, Protocol, SessionOutcome};
use omnc::scenario::{Quality, Scenario};

fn run_suite(quality: Quality, sessions: u64) -> Vec<[SessionOutcome; 4]> {
    let mut scenario = Scenario::small_test();
    scenario.nodes = 80;
    scenario.quality = quality;
    scenario.hops = (4, 8);
    // Paper-sized generations (the protocol dynamics depend on them) with
    // coefficient-only payloads for speed.
    scenario.session = omnc::session::SessionConfig::reduced();
    let mut out = Vec::new();
    for k in 0..sessions {
        let (topology, src, dst) = scenario.build_session(k);
        let run = |p| run_session(&topology, src, dst, p, &scenario.session, 100 + k);
        out.push([
            run(Protocol::Omnc),
            run(Protocol::More),
            run(Protocol::OldMore),
            run(Protocol::EtxRouting),
        ]);
    }
    out
}

#[test]
fn omnc_beats_more_beats_etx_on_lossy_meshes() {
    let runs = run_suite(Quality::Lossy, 6);
    let mean = |idx: usize| Cdf::new(runs.iter().map(|r| r[idx].throughput).collect()).mean();
    let (omnc, more, etx) = (mean(0), mean(1), mean(3));
    assert!(
        omnc > more,
        "OMNC ({omnc:.0} B/s) must beat MORE ({more:.0} B/s) on average"
    );
    assert!(
        omnc > 1.3 * etx,
        "OMNC ({omnc:.0} B/s) must clearly beat ETX routing ({etx:.0} B/s)"
    );
}

#[test]
fn omnc_queues_stay_small_while_more_queues_grow() {
    // The Fig. 3 contrast: rate control keeps OMNC's time-averaged queues
    // near zero; MORE's congestion-oblivious credits let them grow by an
    // order of magnitude.
    let runs = run_suite(Quality::Lossy, 5);
    let omnc_q = Cdf::new(runs.iter().map(|r| r[0].mean_queue()).collect()).mean();
    let more_q = Cdf::new(runs.iter().map(|r| r[1].mean_queue()).collect()).mean();
    assert!(omnc_q < 2.0, "OMNC mean queue {omnc_q:.2} should be ~0.6");
    assert!(
        more_q > 3.0 * omnc_q,
        "MORE mean queue {more_q:.2} should dwarf OMNC's {omnc_q:.2}"
    );
}

#[test]
fn oldmore_has_the_lowest_utility_ratios() {
    // The Fig. 4 contrast: min-cost pruning leaves oldMORE with fewer
    // active nodes and paths than OMNC.
    let runs = run_suite(Quality::Lossy, 5);
    let mean_node =
        |idx: usize| Cdf::new(runs.iter().map(|r| r[idx].node_utility).collect()).mean();
    let omnc_nodes = mean_node(0);
    let old_nodes = mean_node(2);
    assert!(
        old_nodes < omnc_nodes,
        "oldMORE node utility {old_nodes:.2} must trail OMNC's {omnc_nodes:.2}"
    );
    let mean_path =
        |idx: usize| Cdf::new(runs.iter().map(|r| r[idx].path_utility).collect()).mean();
    assert!(
        mean_path(2) < mean_path(0),
        "oldMORE path utility must trail OMNC's"
    );
}

#[test]
fn coding_gains_shrink_on_high_quality_links() {
    // Fig. 2 right: with avg reception probability ~0.91, network coding's
    // advantage over best-path routing largely evaporates.
    let lossy = run_suite(Quality::Lossy, 5);
    let high = run_suite(Quality::High, 5);
    let gain = |runs: &Vec<[SessionOutcome; 4]>| {
        let g: Vec<f64> = runs
            .iter()
            .filter(|r| r[3].throughput > 0.0)
            .map(|r| r[0].throughput / r[3].throughput)
            .collect();
        Cdf::new(g).mean()
    };
    let g_lossy = gain(&lossy);
    let g_high = gain(&high);
    assert!(
        g_high < g_lossy,
        "OMNC's gain must shrink with link quality: lossy {g_lossy:.2} vs high {g_high:.2}"
    );
}

#[test]
fn emulated_throughput_stays_below_the_framework_optimum() {
    // Sec. 5: "the actual emulated throughput of OMNC tends to be lower
    // than the optimized throughput computed by the sUnicast framework".
    let runs = run_suite(Quality::Lossy, 5);
    for (k, r) in runs.iter().enumerate() {
        let predicted = r[0]
            .predicted_throughput
            .expect("OMNC reports its prediction");
        assert!(
            r[0].throughput <= predicted * 1.05,
            "session {k}: emulated {:.0} exceeded predicted {predicted:.0}",
            r[0].throughput
        );
    }
}
