//! Integration tests for Drift's observability and fault-injection features
//! through the public API, combined with the protocol stack.

use omnc::drift::{Behavior, Ctx, Dest, MacModel, Outgoing, Simulator, TraceEvent};
use omnc::net_topo::graph::NodeId;
use omnc::net_topo::topologies;
use omnc::runner::{run_session, run_session_with_fault, Protocol};
use omnc::scenario::Scenario;

#[derive(Clone)]
struct Ping;

struct Talker {
    count: usize,
}
impl Behavior<Ping> for Talker {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
        for _ in 0..self.count {
            ctx.enqueue(Outgoing {
                msg: Ping,
                wire_len: 50,
                dest: Dest::Broadcast,
                tag: None,
            });
        }
    }
}
struct Silent;
impl Behavior<Ping> for Silent {}

#[test]
fn trace_accounts_for_every_transmission_and_outcome() {
    let topo = topologies::line(3, 0.5);
    let mut sim: Simulator<Ping, Box<dyn Behavior<Ping>>> =
        Simulator::new(&topo, MacModel::fair_share(1000.0), 99);
    sim.enable_trace(100_000);
    sim.set_behavior(NodeId::new(0), Box::new(Talker { count: 200 }));
    sim.set_behavior(NodeId::new(1), Box::new(Silent));
    sim.run_until(100.0);

    let trace = sim.trace();
    let mut tx = 0u64;
    let mut delivered = 0u64;
    let mut lost = 0u64;
    for e in trace.events() {
        match e {
            TraceEvent::TxComplete { .. } => tx += 1,
            TraceEvent::Delivered { .. } => delivered += 1,
            TraceEvent::Lost { .. } => lost += 1,
            TraceEvent::TxStart { .. } | TraceEvent::Queue { .. } => {}
        }
    }
    assert_eq!(tx, 200);
    // Node 0 has one in-range receiver (node 1): every transmission is
    // either delivered or lost there.
    assert_eq!(delivered + lost, 200);
    assert_eq!(delivered, sim.stats(NodeId::new(1)).packets_received);
    // p = 0.5: both outcomes must actually occur.
    assert!(
        delivered > 50 && lost > 50,
        "delivered {delivered} lost {lost}"
    );
}

#[test]
fn killing_the_sole_relay_stops_coded_delivery_too() {
    // On a pure line there is no path diversity: OMNC cannot survive the
    // relay's death either — resilience requires alternative paths.
    let topo = topologies::line(3, 0.8);
    let cfg = Scenario::small_test().session;
    let healthy = run_session(
        &topo,
        NodeId::new(0),
        NodeId::new(2),
        Protocol::Omnc,
        &cfg,
        5,
    );
    let faulty = run_session_with_fault(
        &topo,
        NodeId::new(0),
        NodeId::new(2),
        Protocol::Omnc,
        &cfg,
        5,
        Some((NodeId::new(1), cfg.duration / 2.0)),
    );
    assert!(healthy.throughput > 0.0);
    assert!(
        faulty.throughput < healthy.throughput,
        "faulty {} vs healthy {}",
        faulty.throughput,
        healthy.throughput
    );
}

#[test]
fn parallel_chains_give_omnc_fault_tolerance() {
    // With two disjoint chains, killing one relay leaves the other path.
    let topo = topologies::parallel_chains(2, 3, 0.8);
    let cfg = Scenario::small_test().session;
    let (src, dst) = (NodeId::new(0), NodeId::new(1));
    let healthy = run_session(&topo, src, dst, Protocol::Omnc, &cfg, 6);
    // Kill the first relay of chain 0 (node 2).
    let faulty = run_session_with_fault(
        &topo,
        src,
        dst,
        Protocol::Omnc,
        &cfg,
        6,
        Some((NodeId::new(2), cfg.duration / 2.0)),
    );
    assert!(healthy.throughput > 0.0);
    assert!(
        faulty.throughput > 0.45 * healthy.throughput,
        "multipath should retain throughput: faulty {} vs healthy {}",
        faulty.throughput,
        healthy.throughput
    );
}

#[test]
fn etx_dies_with_its_relay_on_a_line() {
    let topo = topologies::line(4, 0.9);
    let cfg = Scenario::small_test().session;
    let healthy = run_session(
        &topo,
        NodeId::new(0),
        NodeId::new(3),
        Protocol::EtxRouting,
        &cfg,
        7,
    );
    let faulty = run_session_with_fault(
        &topo,
        NodeId::new(0),
        NodeId::new(3),
        Protocol::EtxRouting,
        &cfg,
        7,
        Some((NodeId::new(1), cfg.duration / 2.0)),
    );
    assert!(healthy.throughput > 0.0);
    // Only the pre-fault half of the session delivers.
    assert!(
        faulty.throughput <= 0.65 * healthy.throughput,
        "faulty {} vs healthy {}",
        faulty.throughput,
        healthy.throughput
    );
}
