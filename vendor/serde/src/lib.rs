//! Offline stand-in for `serde`.
//!
//! Uses a simplified, *value-based* data model instead of upstream serde's
//! visitor architecture: [`Serialize`] renders a type into a [`Value`]
//! tree, [`Deserialize`] rebuilds the type from one. `serde_json` (also
//! vendored) converts between [`Value`] and JSON text. The
//! `#[derive(Serialize, Deserialize)]` macros are re-exported from
//! `serde_derive` and generate externally-tagged enum representations and
//! field-name objects for structs, mirroring upstream serde's default JSON
//! shape.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null` (also the encoding of `None`).
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (never produced if the value fits `UInt`).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an [`Value::Object`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (from `Int`, `UInt`, or `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric payload as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization/deserialization failure: an error message with optional
/// field context accumulated while unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(message: T) -> Self {
        Error {
            message: message.to_string(),
        }
    }

    /// Prefixes the message with a field/element context.
    #[must_use]
    pub fn context(self, ctx: &str) -> Self {
        Error {
            message: format!("{ctx}: {}", self.message),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// Produces the value-tree encoding of `self`.
    fn serialize(&self) -> Value;
}

/// Rebuilds `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `value` into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape or range does not match.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: looks up a struct field, mapping "missing" to
/// [`Value::Null`] so `Option` fields default to `None`.
pub fn field<'v>(value: &'v Value, name: &str) -> &'v Value {
    static NULL: Value = Value::Null;
    value.get(name).unwrap_or(&NULL)
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps serialize as sorted arrays of `[key, value]` pairs — JSON objects
/// require string keys, and workspace maps are keyed by tuples and ids.
/// Sorting by the key's encoding makes output deterministic despite
/// `HashMap` iteration order.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        let mut pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.serialize(), v.serialize()))
            .collect();
        pairs.sort_by_key(|pair| value_sort_key(&pair.0));
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

/// A total order over values used only to make map output deterministic.
fn value_sort_key(v: &Value) -> String {
    match v {
        Value::Null => String::from("\0null"),
        Value::Bool(b) => format!("\0b{b}"),
        Value::Int(i) => format!("\0i{i:+021}"),
        Value::UInt(u) => format!("\0i+{u:020}"),
        Value::Float(f) => format!("\0f{f:+025.6e}"),
        Value::String(s) => s.clone(),
        Value::Array(items) => items.iter().map(value_sort_key).collect(),
        Value::Object(fields) => fields
            .iter()
            .map(|(k, v)| format!("{k}={}", value_sort_key(v)))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {value:?}")))
    }
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), value)))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!(
                        concat!("value {} out of range for ", stringify!($t)), raw)))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), value)))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!(
                        concat!("value {} out of range for ", stringify!($t)), raw)))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {value:?}")))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {value:?}")))
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, got {value:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::deserialize(value).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {value:?}")))?;
        items
            .iter()
            .enumerate()
            .map(|(i, v)| T::deserialize(v).map_err(|e| e.context(&format!("[{i}]"))))
            .collect()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_de_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {value:?}")))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of {}, got {}", $len, items.len())));
                }
                Ok(($($name::deserialize(&items[$idx])
                    .map_err(|e| e.context(&format!("[{}]", $idx)))?,)+))
            }
        }
    )*};
}
impl_de_tuple! {
    (A: 0 ; 1)
    (A: 0, B: 1 ; 2)
    (A: 0, B: 1, C: 2 ; 3)
    (A: 0, B: 1, C: 2, D: 3 ; 4)
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array of pairs, got {value:?}")))?;
        items
            .iter()
            .map(<(K, V)>::deserialize)
            .collect::<Result<HashMap<K, V, S>, Error>>()
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array of pairs, got {value:?}")))?;
        items.iter().map(<(K, V)>::deserialize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(String::deserialize(&"hi".serialize()).unwrap(), "hi");
        assert_eq!(
            Vec::<u8>::deserialize(&vec![1u8, 2, 3].serialize()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u8>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(
            <(u64, f64)>::deserialize(&(3u64, 0.5f64).serialize()).unwrap(),
            (3, 0.5)
        );
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::deserialize(&300u64.serialize()).is_err());
        assert!(u64::deserialize(&(-1i64).serialize()).is_err());
        assert!(i8::deserialize(&Value::Int(-200)).is_err());
    }

    #[test]
    fn hashmap_round_trips_deterministically() {
        let mut m: HashMap<(usize, usize), f64> = HashMap::new();
        m.insert((3, 1), 0.5);
        m.insert((1, 2), 0.25);
        let a = m.serialize();
        let b = m.clone().serialize();
        assert_eq!(a, b, "serialization must be deterministic");
        let back: HashMap<(usize, usize), f64> = Deserialize::deserialize(&a).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn field_lookup_defaults_to_null() {
        let obj = Value::Object(vec![(String::from("a"), Value::UInt(1))]);
        assert_eq!(field(&obj, "a"), &Value::UInt(1));
        assert!(field(&obj, "missing").is_null());
    }
}
