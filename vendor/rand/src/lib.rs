//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses: the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`, `fill`),
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast, and of
//! ample statistical quality for simulation workloads. Streams do **not**
//! match upstream rand; only determinism per seed is guaranteed.

use std::ops::{Bound, RangeBounds};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce with a uniform (or, for `bool`,
/// fair-coin) distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit resolution.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` exclusive unless `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
    /// The smallest representable value (used for unbounded range starts).
    const MIN: Self;
    /// The largest representable value (used for unbounded range ends).
    const MAX: Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            const MIN: Self = <$t>::MIN;
            const MAX: Self = <$t>::MAX;
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range: empty range"
                );
                // Span as u64 (wrapping subtraction handles signed types).
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                if span == 0 {
                    // Full u64-sized domain: every value is fair game.
                    return rng.next_u64() as $t;
                }
                // Rejection-free multiply-shift (Lemire); bias < 2^-64·span.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                let offset = (wide >> 64) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            const MIN: Self = <$t>::MIN;
            const MAX: Self = <$t>::MAX;
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, B: RangeBounds<T>>(&mut self, range: B) -> T {
        let (lo, hi, inclusive) = match (range.start_bound(), range.end_bound()) {
            (Bound::Included(&lo), Bound::Excluded(&hi)) => (lo, hi, false),
            (Bound::Included(&lo), Bound::Included(&hi)) => (lo, hi, true),
            (Bound::Included(&lo), Bound::Unbounded) => (lo, T::MAX, true),
            (Bound::Unbounded, Bound::Excluded(&hi)) => (T::MIN, hi, false),
            (Bound::Unbounded, Bound::Included(&hi)) => (T::MIN, hi, true),
            (Bound::Unbounded, Bound::Unbounded) => (T::MIN, T::MAX, true),
            _ => panic!("gen_range: unsupported range bounds"),
        };
        T::sample_range(self, lo, hi, inclusive)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p must be in [0, 1], got {p}"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Fills the byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded via SplitMix64. Not the upstream `StdRng` stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// `use rand::prelude::*` convenience re-exports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0.1..=1.0);
            assert!((0.1..=1.0).contains(&i));
            let s = rng.gen_range(-5i64..-1);
            assert!((-5..-1).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should occur: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_fills_every_length() {
        let mut rng = StdRng::seed_from_u64(5);
        for len in [0usize, 1, 7, 8, 9, 64, 65] {
            let mut buf = vec![0u8; len];
            rng.fill(&mut buf[..]);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
