//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32
    }
}

/// Strategy over a type's full domain; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
