//! The [`Strategy`] trait and range-based strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the deterministic generator.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start() as i128, *self.end() as i128);
                assert!(start <= end, "empty range strategy");
                let span = (end - start + 1) as u64;
                // span == 0 means the full u64 domain; take the raw draw.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (start + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let start = self.start as i128;
                let span = (<$t>::MAX as i128 - start + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (start + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * unit;
                // Floating rounding can land exactly on `end`; step inside.
                if v >= self.end { self.start } else { v }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (end - start) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_float_ranges!(f32, f64);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}
