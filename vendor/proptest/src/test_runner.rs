//! Test-loop configuration, failure type, and the deterministic generator.

use std::fmt;

/// How many cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property: carries the formatted assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic 64-bit generator (SplitMix64). Seeded from the test name
/// so distinct tests see distinct — but stable — input streams.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; the tiny modulo bias is irrelevant for tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}
