//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s with lengths drawn from a range; see [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A strategy for vectors whose length lies in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = Strategy::generate(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
