//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` attribute, range and `any::<T>()`
//! strategies, `collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//! Cases are generated from a fixed-seed deterministic generator (no
//! shrinking on failure — the failing case's inputs are printed instead).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `name(pat in strategy, ...)` function runs
/// its body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { [$config] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            [$crate::test_runner::ProptestConfig::default()] $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ([$config:expr]) => {};
    ([$config:expr]
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..config.cases {
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("proptest '{}' case {}/{} failed: {}",
                        stringify!($name), __case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_impl! { [$config] $($rest)* }
    };
}

/// Fails the current proptest case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current proptest case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 2usize..12, p in 0.05f64..0.6) {
            prop_assert!((2..12).contains(&x));
            prop_assert!((0.05..0.6).contains(&p));
        }

        #[test]
        fn range_from_is_nonzero(n in 1u8..) {
            prop_assert!(n >= 1);
        }

        #[test]
        fn vec_respects_size(mut data in crate::collection::vec(any::<u8>(), 0..128)) {
            prop_assert!(data.len() < 128);
            data.push(0);
            prop_assert!(!data.is_empty());
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let r = 0u64..1000;
        for _ in 0..16 {
            assert_eq!(
                Strategy::generate(&r, &mut a),
                Strategy::generate(&r, &mut b)
            );
        }
    }
}
