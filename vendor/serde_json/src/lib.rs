//! Offline stand-in for `serde_json`: JSON text ⇄ [`serde::Value`].
//!
//! Writes compact JSON (no whitespace) and parses the full JSON grammar via
//! recursive descent. Non-finite floats serialize as `null`, matching
//! upstream serde_json's default behavior.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes `value` as compact JSON text.
///
/// # Errors
///
/// Never fails for the value model this crate supports; the `Result` exists
/// for signature compatibility with upstream `serde_json`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::deserialize(&value)
}

/// Converts a serializable type into the [`Value`] tree.
///
/// # Errors
///
/// Never fails; the `Result` mirrors upstream `serde_json::to_value`.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Rebuilds a `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the value's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats distinguishable from ints ("1.0").
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by the writer;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-append the run up to the next quote or escape.
                    // Validating only the run (not the whole remaining
                    // input) keeps string parsing linear; the delimiter
                    // bytes are ASCII, so they never split a multi-byte
                    // UTF-8 sequence.
                    let rest = &self.bytes[self.pos..];
                    let len = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let s = std::str::from_utf8(&rest[..len])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_json() {
        let v = Value::Object(vec![
            (String::from("a"), Value::UInt(1)),
            (
                String::from("b"),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            (String::from("c"), Value::Float(0.5)),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null],"c":0.5}"#);
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        assert_eq!(to_string(&Value::Float(3.0)).unwrap(), "3.0");
        assert_eq!(to_string(&Value::Float(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value =
            from_str(r#" { "x" : [1, -2, 3.5e2], "s": "a\nbA", "ok": false } "#).unwrap();
        assert_eq!(v.get("x").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("x").unwrap().as_array().unwrap()[1], Value::Int(-2));
        assert_eq!(
            v.get("x").unwrap().as_array().unwrap()[2],
            Value::Float(350.0)
        );
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\nbA");
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn round_trips_through_text() {
        let original = Value::Object(vec![
            (
                String::from("name"),
                Value::String(String::from("q\"uo\\te\n")),
            ),
            (
                String::from("xs"),
                Value::Array(vec![Value::UInt(7), Value::Float(1.25)]),
            ),
        ]);
        let text = to_string(&original).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn bulk_string_runs_preserve_escapes_and_multibyte() {
        let original = Value::String("π plain run \n \"q\" \\ tail π".repeat(50));
        let text = to_string(&original).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), original);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1u64, 2, 3];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }
}
