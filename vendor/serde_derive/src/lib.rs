//! `#[derive(Serialize, Deserialize)]` for the vendored value-based serde.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote — the
//! build environment is offline). Supports the item shapes this workspace
//! uses: non-generic structs with named fields, tuple structs, unit
//! structs, and enums whose variants are unit, tuple, or struct-like.
//! Representation matches upstream serde's default JSON shape: structs →
//! objects keyed by field name, newtype structs → their inner value, unit
//! enum variants → strings, payload-carrying variants → externally tagged
//! single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field list: named (`{ a: T }`) or positional (`(T, U)`).
enum Fields {
    Named(Vec<String>),
    Unnamed(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => serialize_struct_body(name, fields),
        Item::Enum { name, variants } => serialize_enum_body(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => deserialize_struct_body(name, fields),
        Item::Enum { name, variants } => deserialize_enum_body(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } => name,
        Item::Enum { name, .. } => name,
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "derive(Serialize/Deserialize): generic types are not supported by the vendored serde"
        );
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Unnamed(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Advances past outer attributes (`#[...]`) and visibility qualifiers.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` and friends
                }
            }
            _ => return,
        }
    }
}

/// Parses `a: T, b: U, ...` returning the field names in order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, got {other}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
    }
    fields
}

/// Skips a type expression up to (and past) the next top-level comma,
/// tracking angle-bracket depth so `HashMap<(usize, usize), f64>` counts as
/// one field.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0usize;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth = depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Counts the top-level comma-separated entries of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Unnamed(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

/// `Object([...])` expression over `(expr_prefix)field` accessors.
fn serialize_named(accessor: &dyn Fn(&str) -> String, names: &[String]) -> String {
    let pushes: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "(String::from(\"{f}\"), ::serde::Serialize::serialize(&{acc}))",
                acc = accessor(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", pushes.join(", "))
}

fn serialize_struct_body(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let expr = serialize_named(&|f| format!("self.{f}"), names);
            expr
        }
        Fields::Unnamed(1) => String::from("::serde::Serialize::serialize(&self.0)"),
        Fields::Unnamed(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Unit => String::from("::serde::Value::Null"),
    }
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => {
                    format!("{name}::{vname} => ::serde::Value::String(String::from(\"{vname}\")),")
                }
                Fields::Unnamed(n) => {
                    let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let payload = if *n == 1 {
                        String::from("::serde::Serialize::serialize(&*f0)")
                    } else {
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize(&*{b})"))
                            .collect();
                        format!("::serde::Value::Array(vec![{}])", items.join(", "))
                    };
                    format!(
                        "{name}::{vname}({binds}) => ::serde::Value::Object(vec![\
                         (String::from(\"{vname}\"), {payload})]),",
                        binds = binders.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let payload = serialize_named(&|f| f.to_string(), fields);
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![\
                         (String::from(\"{vname}\"), {payload})]),",
                        binds = fields.join(", ")
                    )
                }
            }
        })
        .collect();
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Field initializers `f: Deserialize::deserialize(field(src, "f"))?`.
fn deserialize_named(src: &str, names: &[String]) -> String {
    names
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize(::serde::field({src}, \"{f}\"))\
                 .map_err(|e| e.context(\"{f}\"))?,"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            format!(
                "if value.as_object().is_none() {{\n\
                 return Err(::serde::Error::custom(format!(\
                 \"expected object for {name}, got {{value:?}}\")));\n}}\n\
                 Ok({name} {{\n{inits}\n}})",
                inits = deserialize_named("value", names)
            )
        }
        Fields::Unnamed(1) => format!("Ok({name}(::serde::Deserialize::deserialize(value)?))"),
        Fields::Unnamed(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"expected array for {name}, got {{value:?}}\")))?;\n\
                 if items.len() != {n} {{\n\
                 return Err(::serde::Error::custom(format!(\
                 \"expected {n} elements for {name}, got {{}}\", items.len())));\n}}\n\
                 Ok({name}({inits}))",
                inits = inits.join(", ")
            )
        }
        Fields::Unit => format!("Ok({name})"),
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("\"{vname}\" => return Ok({name}::{vname}),", vname = v.name))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => format!("\"{vname}\" => Ok({name}::{vname}),"),
                Fields::Unnamed(1) => format!(
                    "\"{vname}\" => Ok({name}::{vname}(\
                     ::serde::Deserialize::deserialize(payload)\
                     .map_err(|e| e.context(\"{vname}\"))?)),"
                ),
                Fields::Unnamed(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                        .collect();
                    format!(
                        "\"{vname}\" => {{\n\
                         let items = payload.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array payload for {vname}\"))?;\n\
                         if items.len() != {n} {{\n\
                         return Err(::serde::Error::custom(\"wrong arity for {vname}\"));\n}}\n\
                         Ok({name}::{vname}({inits}))\n}}",
                        inits = inits.join(", ")
                    )
                }
                Fields::Named(fields) => format!(
                    "\"{vname}\" => Ok({name}::{vname} {{\n{inits}\n}}),",
                    inits = deserialize_named("payload", fields)
                ),
            }
        })
        .collect();
    format!(
        "if let Some(s) = value.as_str() {{\n\
         match s {{\n{unit_arms}\n_ => return Err(::serde::Error::custom(\
         format!(\"unknown {name} variant {{s:?}}\"))),\n}}\n}}\n\
         let obj = value.as_object().ok_or_else(|| ::serde::Error::custom(\
         format!(\"expected {name} variant, got {{value:?}}\")))?;\n\
         if obj.len() != 1 {{\n\
         return Err(::serde::Error::custom(\"expected single-key variant object\"));\n}}\n\
         let (tag, payload) = &obj[0];\n\
         let _ = payload;\n\
         match tag.as_str() {{\n{tagged_arms}\n\
         _ => Err(::serde::Error::custom(format!(\"unknown {name} variant {{tag:?}}\"))),\n}}",
        unit_arms = unit_arms.join("\n"),
        tagged_arms = tagged_arms.join("\n")
    )
}
