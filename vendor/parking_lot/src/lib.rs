//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing parking_lot's poison-free API (`lock()` returns the
//! guard directly). A poisoned std lock (a panic while held) is recovered
//! into its inner value, matching parking_lot's "no poisoning" semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
