//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock harness with criterion's API shape: groups,
//! throughput annotations, `bench_with_input`, and the
//! `criterion_group!`/`criterion_main!` macros. Reports median ns/iter (and
//! derived throughput) to stdout; no statistics, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration annotation used to derive throughput rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark's display identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name with a parameter value.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name within a group.
pub trait IntoBenchmarkId {
    /// The display label for the benchmark.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Median seconds per iteration, filled in by [`Bencher::iter`].
    result: Option<f64>,
}

impl Bencher {
    /// Measures `f`, storing the median time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and estimate the cost of one call.
        let warmup_start = Instant::now();
        let mut calls = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(20) && calls < 1000 {
            black_box(f());
            calls += 1;
        }
        let est = warmup_start.elapsed().as_secs_f64() / calls.max(1) as f64;
        // Aim for ~5ms per sample, at least one call.
        let iters = ((0.005 / est.max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(samples[samples.len() / 2]);
    }
}

fn run_one(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_size,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(secs) => {
            let rate = match throughput {
                Some(Throughput::Bytes(n)) => {
                    format!("  {:>10.1} MiB/s", n as f64 / secs / (1024.0 * 1024.0))
                }
                Some(Throughput::Elements(n)) => {
                    format!("  {:>10.1} Melem/s", n as f64 / secs / 1e6)
                }
                None => String::new(),
            };
            println!("bench {label:<40} {:>12.0} ns/iter{rate}", secs * 1e9);
        }
        None => println!("bench {label:<40}  (no measurement)"),
    }
}

/// Top-level benchmark driver; collects and runs benchmarks immediately.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.throughput, self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<N: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.throughput, self.sample_size, &mut f);
        self
    }

    /// Ends the group (reporting already happened eagerly).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.throughput(Throughput::Bytes(1024));
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("k", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
